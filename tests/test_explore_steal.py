"""Work-stealing dispatcher tests (PR 10).

The lease queue must be invisible in the results: every fault kind x
stealing on/off x jobs 1/2 assembles a ResultSet bit-identical to the
fault-free baseline with exactly the same retry/quarantine counters as
static dispatch.  On top of the identity matrix, the tests pin the
lease planner's determinism, a deterministically-forced steal split,
the soft-affinity counter, shard-stitch resume under stealing, and the
``--dry-run`` planner surface.
"""

import pytest

from repro.explore import (
    DeadlinePolicy,
    DesignQuery,
    Executor,
    ExplorationSpace,
    FaultPlan,
    Lease,
    ResultCache,
    RetryPolicy,
    plan_leases,
)
from repro.cli import main

SPACE = ExplorationSpace(
    kernels=("fir", "mat"), allocators=("FR-RA", "NO-SR"), budgets=(8,)
)
QUERIES = SPACE.expand()
TARGET = next(
    q for q in QUERIES if q.kernel == "fir" and q.allocator == "FR-RA"
)

FAST = dict(
    deadlines=DeadlinePolicy(timeout_factor=1.0, floor=2.5, ceiling=2.5),
)


def sweep(jobs=1, faults=None, cache=None, max_retries=2, stealing=True,
          space=SPACE, **kwargs):
    return Executor(
        jobs=jobs,
        cache=cache,
        faults=faults,
        stealing=stealing,
        retry=RetryPolicy(max_retries=max_retries, backoff=0.0),
        **FAST,
        **kwargs,
    ).run(space)


def plan_for(kind, fires=1):
    return FaultPlan.targeting(
        kind, [TARGET], fires=fires, hang_seconds=8.0, slow_seconds=0.01
    )


def docs(result):
    return [record.to_dict() for record in result.records]


@pytest.fixture(scope="module")
def baseline():
    """The fault-free jobs=1 sweep every matrix entry compares against."""
    return sweep()


# -- the steal-path fault matrix ----------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("stealing", [False, True])
@pytest.mark.parametrize("kind", ["crash", "hang", "kill", "slow"])
def test_fault_matrix_bit_identical(kind, stealing, jobs, baseline):
    """Every evaluation-plane fault x dispatch mode x jobs: same records,
    same exact counters — fault decisions are pure in (seed, digest,
    attempt), so lease shape cannot change what fires."""
    result = sweep(jobs=jobs, stealing=stealing, faults=plan_for(kind))
    assert docs(result) == docs(baseline)
    stats = result.stats
    assert stats.evaluated == len(QUERIES)
    assert stats.quarantined == 0
    assert stats.errors == 0
    assert stats.retries == (0 if kind == "slow" else 1)


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("stealing", [False, True])
def test_quarantine_counters_match_across_dispatch(stealing, jobs, baseline):
    """A poison point quarantines with identical counters under leases
    and static chunks."""
    result = sweep(
        jobs=jobs, stealing=stealing, faults=plan_for("crash", fires=5),
        max_retries=1,
    )
    stats = result.stats
    assert stats.quarantined == 1
    assert stats.retries == 1
    poisoned = [r for r in result.records if r.quarantined]
    assert len(poisoned) == 1
    assert poisoned[0].query.digest() == TARGET.digest()
    assert poisoned[0].attempts == 2
    healthy = {r.query.digest(): r.to_dict() for r in result.records
               if not r.quarantined}
    expected = {r.query.digest(): r.to_dict() for r in baseline.records
                if r.query.digest() != TARGET.digest()}
    assert healthy == expected


@pytest.mark.parametrize("stealing", [False, True])
def test_enospc_read_only_degradation_under_stealing(
    stealing, baseline, tmp_path
):
    with pytest.warns(UserWarning, match="read-only"):
        result = sweep(
            jobs=2, stealing=stealing, faults=plan_for("enospc"),
            cache=tmp_path / ("steal" if stealing else "static"),
        )
    assert result.stats.cache_read_only
    assert docs(result) == docs(baseline)


# -- forced steal: split is deterministic when workers would idle -------------


def test_steal_split_and_counters():
    """One 24-point lease at jobs=2: the first feed sees more free slots
    than queued leases and must split — exactly once, since splitting
    leaves only singletons behind."""
    queries = [
        DesignQuery(kernel="fir", allocator="NO-SR", budget=b)
        for b in range(4, 52, 2)
    ]
    assert len(queries) == 24
    reference = sweep(jobs=1, space=queries)
    result = sweep(jobs=2, space=queries, lease_points=24)
    assert docs(result) == docs(reference)
    stats = result.stats
    assert stats.steals == 1
    assert stats.leases == 24  # every point fed as its own stolen lease
    # All leases share one kernel; once a worker has evaluated anything,
    # its resident fingerprint matches every queued lease.
    assert stats.affinity_hits >= 1
    # The static and jobs=1 paths never touch the scheduler counters.
    assert reference.stats.leases == 0
    assert reference.stats.steals == 0
    assert reference.stats.affinity_hits == 0


# -- lease planner ------------------------------------------------------------


def test_plan_leases_deterministic_and_single_kernel():
    queries = list(SPACE.expand()) * 3  # 12 items, 2 kernels
    items = list(enumerate(queries))
    cost = lambda item: 1.0 + item[0] * 0.01  # noqa: E731
    key = lambda item: item[1].kernel  # noqa: E731
    first = plan_leases(items, cost=cost, jobs=2, key=key, max_points=4)
    second = plan_leases(items, cost=cost, jobs=2, key=key, max_points=4)
    assert first == second
    assert first == sorted(first, key=lambda lease: (-lease.cost, lease.seq))
    for lease in first:
        assert len({item[1].kernel for item in lease.items}) == 1
        assert len(lease.items) <= 4
    covered = sorted(i for lease in first for i, _ in lease.items)
    assert covered == list(range(len(items)))


def test_plan_leases_isolates_predicted_expensive_points():
    items = list(range(20))
    # Item 7 holds half the predicted mass: it must ride alone.
    cost = lambda item: 100.0 if item == 7 else 1.0  # noqa: E731
    leases = plan_leases(
        items, cost=cost, jobs=2, key=lambda item: "k", max_points=8
    )
    singleton = next(l for l in leases if l.items == (7,))
    assert singleton.costs == (100.0,)
    # Longest first: the expensive singleton leads the queue.
    assert leases[0] is singleton


def test_lease_split_preserves_order_and_sequencing():
    lease = Lease(seq=0, key="k", items=(10, 11, 12), costs=(3.0, 2.0, 1.0))
    singles = lease.split(next_seq=5)
    assert [l.items for l in singles] == [(10,), (11,), (12,)]
    assert [l.seq for l in singles] == [5, 6, 7]
    assert [l.cost for l in singles] == [3.0, 2.0, 1.0]
    assert all(l.key == "k" for l in singles)


# -- shard + resume stay bit-identical under stealing -------------------------


def test_shard_stitch_resume_under_stealing(tmp_path, baseline):
    cache = tmp_path / "cache"
    for shard in ("1/2", "2/2"):
        part = sweep(jobs=2, cache=cache, shard=shard)
        assert 0 < len(part) < len(QUERIES)
    stitched = sweep(jobs=2, cache=cache)
    assert stitched.stats.cache_hits == len(QUERIES)
    assert stitched.stats.evaluated == 0
    assert docs(stitched) == docs(baseline)


# -- dry run ------------------------------------------------------------------


def test_dry_run_plans_without_evaluating(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    plan = FaultPlan.targeting("slow", [TARGET], slow_seconds=0.01)
    executor = Executor(jobs=2, cache=cache, faults=plan, **FAST)
    text = executor.dry_run(SPACE)
    assert f"dry run: {len(QUERIES)} points, 0 cache hits" in text
    assert "cost model: cold" in text
    assert "work-stealing, jobs=2" in text
    assert "[inject: slow]" in text
    assert "total predicted:" in text
    assert len(cache) == 0  # nothing was evaluated or written

    # Warm the cache; the next dry run predicts in seconds and reports
    # an empty queue.
    sweep(cache=cache)
    warm = executor.dry_run(SPACE)
    assert f"{len(QUERIES)} cache hits" in warm
    assert "cost model: fitted" in warm
    assert "queue: empty — everything is cached" in warm


def test_dry_run_static_and_inline_listings():
    static = Executor(jobs=2, stealing=False, **FAST).dry_run(SPACE)
    assert "static chunks (LPT, jobs=2)" in static
    inline = Executor(jobs=1, **FAST).dry_run(SPACE)
    assert "queue: inline (jobs=1)" in inline


def test_cli_dry_run_and_no_steal(capsys, tmp_path):
    code = main([
        "explore", "--kernels", "fir", "--allocators", "FR-RA", "NO-SR",
        "--budgets", "8", "16", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"), "--dry-run",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "dry run: 4 points" in out
    assert "work-stealing, jobs=2" in out
    assert not (tmp_path / "cache").exists() or not any(
        (tmp_path / "cache").glob("*.json")
    )

    code = main([
        "explore", "--kernels", "fir", "--allocators", "FR-RA",
        "--budgets", "8", "--jobs", "2", "--no-steal", "--dry-run",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "static chunks" in out
