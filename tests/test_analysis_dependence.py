"""Tests for dependence distances and reuse classification."""

from repro.analysis.dependence import reuse_kind, self_reuse_distance


class TestSelfReuseDistance:
    def test_invariant_reference(self, example_kernel):
        a = example_kernel.site_by_id("s0/r:a[k]").ref
        d = self_reuse_distance(example_kernel.nest, a)
        assert d is not None
        assert d.components == (1, 0, 0)
        assert d.carrying_level == 1

    def test_inner_invariant(self, example_kernel):
        c = example_kernel.site_by_id("s1/r:c[j]").ref
        d = self_reuse_distance(example_kernel.nest, c)
        assert d is not None
        assert d.carrying_level == 1  # outermost unused loop is i

    def test_window_reference(self, small_fir):
        x = small_fir.site_by_id("s0/r:x[i + j]").ref
        d = self_reuse_distance(small_fir.nest, x)
        assert d is not None
        assert d.components == (1, -1)
        assert d.is_lex_positive()

    def test_no_reuse(self, example_kernel):
        e = example_kernel.site_by_id("s1/w:e[i][j][k]").ref
        assert self_reuse_distance(example_kernel.nest, e) is None

    def test_strided_window(self):
        from repro.kernels import build_decfir

        kern = build_decfir(n=8, taps=6, decimation=2)
        x = [s for s in kern.reference_sites() if s.array_name == "x"][0].ref
        d = self_reuse_distance(kern.nest, x)
        assert d is not None
        assert d.components == (1, -2)


class TestReuseKind:
    def test_kinds(self, example_kernel, small_fir):
        nest = example_kernel.nest
        assert reuse_kind(nest, example_kernel.site_by_id("s0/r:a[k]").ref) == "invariant"
        assert reuse_kind(nest, example_kernel.site_by_id("s1/w:e[i][j][k]").ref) == "none"
        assert (
            reuse_kind(small_fir.nest, small_fir.site_by_id("s0/r:x[i + j]").ref)
            == "window"
        )
