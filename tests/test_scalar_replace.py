"""Tests for the scalar-replacement transform plan."""

import pytest

from repro.analysis import build_groups
from repro.core import (
    CriticalPathAwareAllocator,
    FullReuseAllocator,
    NaiveAllocator,
    PartialReuseAllocator,
)
from repro.scalar import plan_transform, render_transform


class TestPlan:
    def test_banks_match_allocation(self, example_kernel):
        groups = build_groups(example_kernel)
        alloc = FullReuseAllocator().allocate(example_kernel, 64, groups)
        plan = plan_transform(example_kernel, alloc, groups)
        by = {b.group_name: b for b in plan.banks}
        assert by["a[k]"].registers == 30
        assert by["a[k]"].policy == "pinned"
        assert by["a[k]"].covered == 30
        assert by["b[k][j]"].policy == "buffer"
        assert by["e[i][j][k]"].policy == "buffer"

    def test_prologue_loads_for_pinned_reads(self, example_kernel):
        groups = build_groups(example_kernel)
        alloc = FullReuseAllocator().allocate(example_kernel, 64, groups)
        plan = plan_transform(example_kernel, alloc, groups)
        by = {b.group_name: b for b in plan.banks}
        assert by["a[k]"].prologue_loads == 30
        assert by["c[j]"].prologue_loads == 20
        # Written groups do not prefetch.
        assert by["d[i][k]"].prologue_loads == 0

    def test_writebacks_per_region(self, example_kernel):
        groups = build_groups(example_kernel)
        alloc = CriticalPathAwareAllocator().allocate(example_kernel, 64, groups)
        plan = plan_transform(example_kernel, alloc, groups)
        d = {b.group_name: b for b in plan.banks}["d[i][k]"]
        assert d.policy == "pinned"
        assert d.regions == 4       # one per i iteration
        assert d.writebacks_per_region == 30

    def test_partial_coverage_described(self, example_kernel):
        groups = build_groups(example_kernel)
        alloc = PartialReuseAllocator().allocate(example_kernel, 64, groups)
        plan = plan_transform(example_kernel, alloc, groups)
        d = {b.group_name: b for b in plan.banks}["d[i][k]"]
        assert d.covered == 12
        assert "rank < 12" in d.steady_state

    def test_window_bank(self, small_fir):
        groups = build_groups(small_fir)
        alloc = CriticalPathAwareAllocator().allocate(small_fir, 7, groups)
        plan = plan_transform(small_fir, alloc, groups)
        x = {b.group_name: b for b in plan.banks}["x[i + j]"]
        assert x.policy == "window"
        assert "rotating window" in x.steady_state

    def test_naive_plan_has_no_banks_working(self, example_kernel):
        alloc = NaiveAllocator().allocate(example_kernel, 64)
        plan = plan_transform(example_kernel, alloc)
        assert all(b.policy == "buffer" for b in plan.banks)
        assert plan.total_prologue_loads == 0
        assert plan.total_writebacks == 0


class TestRendering:
    def test_render_contains_sections(self, example_kernel):
        alloc = FullReuseAllocator().allocate(example_kernel, 64)
        text = render_transform(plan_transform(example_kernel, alloc))
        assert "/* prologue */" in text
        assert "/* steady state (per iteration) */" in text
        assert "/* epilogue (per region) */" in text
        assert "a[k]_bank[30]" in text
