"""Tests for DFG construction, critical graphs and cut enumeration."""

import pytest

from repro.analysis import build_groups
from repro.dfg import (
    LatencyModel,
    ReadNode,
    WriteNode,
    build_dfg,
    critical_graph,
    enumerate_cuts,
    to_dot,
)
from repro.errors import AnalysisError
from repro.ir import Op


class TestBuild:
    def test_example_structure(self, example_kernel):
        dfg = build_dfg(example_kernel)
        # Figure 2(a): 4 reads minus forwarded d = 3 reads, 2 ops, 2 writes.
        assert len(dfg.reads()) == 3
        assert len(dfg.writes()) == 2
        assert len(dfg.ops()) == 2

    def test_forwarded_read_routes_through_write(self, example_kernel):
        dfg = build_dfg(example_kernel)
        d_write = next(n for n in dfg.writes() if n.site.array_name == "d")
        succs = dfg.successors(d_write)
        assert len(succs) == 1
        assert succs[0].op is Op.MUL  # op2 consumes d's value

    def test_sources_are_reads(self, example_kernel):
        dfg = build_dfg(example_kernel)
        assert all(isinstance(n, ReadNode) for n in dfg.sources())

    def test_topological_is_complete(self, example_kernel):
        dfg = build_dfg(example_kernel)
        order = dfg.topological()
        assert len(order) == len(dfg)
        position = {n.uid: idx for idx, n in enumerate(order)}
        for node in dfg:
            for succ in dfg.successors(node):
                assert position[node.uid] < position[succ.uid]

    def test_fir_accumulator_graph(self, small_fir):
        dfg = build_dfg(small_fir)
        # reads: y, c, x; ops: mul, add; writes: y
        assert len(dfg.reads()) == 3
        assert len(dfg.ops()) == 2
        assert len(dfg.writes()) == 1

    def test_to_dot_contains_nodes(self, example_kernel):
        dfg = build_dfg(example_kernel)
        dot = to_dot(dfg)
        assert "read a[k]" in dot
        assert "digraph" in dot


class TestLatencyModel:
    def test_tmem_model(self, example_kernel):
        model = LatencyModel.tmem()
        dfg = build_dfg(example_kernel)
        read = dfg.reads()[0]
        assert model.node_latency(read, hit=False) == 1
        assert model.node_latency(read, hit=True) == 0
        assert model.node_latency(dfg.ops()[0], hit=False) == 0

    def test_realistic_model(self, example_kernel):
        model = LatencyModel.realistic()
        dfg = build_dfg(example_kernel)
        assert model.node_latency(dfg.ops()[0], hit=False) == 2  # MUL

    def test_invalid_latencies(self):
        with pytest.raises(AnalysisError):
            LatencyModel(op_latency={}, ram_latency=0)
        with pytest.raises(AnalysisError):
            LatencyModel(op_latency={}, ram_latency=1, reg_latency=2)


class TestCriticalGraph:
    def test_example_cg_excludes_c(self, example_kernel):
        dfg = build_dfg(example_kernel)
        cg = critical_graph(dfg, LatencyModel.tmem())
        names = {str(n) for n in cg.nodes}
        assert "read c[j]" not in names
        assert "read a[k]" in names
        assert "write d[i][k]" in names
        assert cg.makespan == 3  # three RAM accesses on the serial chain

    def test_cg_shrinks_with_hits(self, example_kernel):
        dfg = build_dfg(example_kernel)
        cg = critical_graph(
            dfg, LatencyModel.realistic(), hits={"d[i][k]": True}
        )
        # d covered: path a -> op1 -> d(0) -> op2 -> e still longest.
        assert cg.makespan == 1 + 2 + 0 + 2 + 1

    def test_groups_on_paths(self, example_kernel):
        dfg = build_dfg(example_kernel)
        cg = critical_graph(dfg, LatencyModel.tmem())
        sets = cg.groups_on_paths()
        assert frozenset({"a[k]", "d[i][k]", "e[i][j][k]"}) in sets
        assert frozenset({"b[k][j]", "d[i][k]", "e[i][j][k]"}) in sets


class TestCuts:
    def test_structural_cuts_match_figure2b(self, example_kernel):
        dfg = build_dfg(example_kernel)
        cg = critical_graph(dfg, LatencyModel.tmem())
        cuts = enumerate_cuts(cg, removable=lambda _: True)
        cut_sets = {c.groups for c in cuts}
        assert cut_sets == {
            frozenset({"d[i][k]"}),
            frozenset({"e[i][j][k]"}),
            frozenset({"a[k]", "b[k][j]"}),
        }

    def test_viable_cuts_exclude_no_reuse(self, example_kernel):
        groups = {g.name: g for g in build_groups(example_kernel)}
        dfg = build_dfg(example_kernel)
        cg = critical_graph(dfg, LatencyModel.tmem())
        cuts = enumerate_cuts(cg, removable=lambda n: groups[n].has_reuse)
        cut_sets = {c.groups for c in cuts}
        assert cut_sets == {
            frozenset({"d[i][k]"}),
            frozenset({"a[k]", "b[k][j]"}),
        }

    def test_no_cut_when_path_pinned(self, example_kernel):
        dfg = build_dfg(example_kernel)
        cg = critical_graph(dfg, LatencyModel.tmem())
        # Nothing removable: every path contains an unremovable node.
        assert enumerate_cuts(cg, removable=lambda _: False) == []

    def test_cuts_are_minimal(self, example_kernel):
        dfg = build_dfg(example_kernel)
        cg = critical_graph(dfg, LatencyModel.tmem())
        cuts = enumerate_cuts(cg, removable=lambda _: True)
        sets = [c.groups for c in cuts]
        for cut in sets:
            for other in sets:
                assert not (other < cut)
