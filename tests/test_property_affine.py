"""Property-based tests for affine index algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import AffineIndex

variables = st.sampled_from(["i", "j", "k", "l"])
coeffs = st.integers(-8, 8)
points = st.fixed_dictionaries(
    {v: st.integers(-20, 20) for v in ["i", "j", "k", "l"]}
)


@st.composite
def affine(draw):
    mapping = draw(
        st.dictionaries(variables, coeffs, max_size=4)
    )
    offset = draw(st.integers(-50, 50))
    return AffineIndex.of(mapping, offset)


@given(affine(), affine(), points)
@settings(max_examples=200, deadline=None)
def test_addition_is_pointwise(a, b, point):
    assert (a + b).evaluate(point) == a.evaluate(point) + b.evaluate(point)


@given(affine(), affine(), points)
@settings(max_examples=200, deadline=None)
def test_subtraction_is_pointwise(a, b, point):
    assert (a - b).evaluate(point) == a.evaluate(point) - b.evaluate(point)


@given(affine(), st.integers(-6, 6), points)
@settings(max_examples=200, deadline=None)
def test_scaling_is_pointwise(a, factor, point):
    assert a.scale(factor).evaluate(point) == factor * a.evaluate(point)


@given(affine(), points)
@settings(max_examples=100, deadline=None)
def test_self_subtraction_is_zero(a, point):
    assert (a - a).evaluate(point) == 0
    assert (a - a).is_constant()


@given(affine(), affine())
@settings(max_examples=100, deadline=None)
def test_addition_commutes_structurally(a, b):
    assert a + b == b + a
    assert hash(a + b) == hash(b + a)


@given(affine())
@settings(max_examples=100, deadline=None)
def test_canonical_form_roundtrip(a):
    rebuilt = AffineIndex.of(a.coeffs, a.offset)
    assert rebuilt == a
