"""CLI smoke tests: every subcommand through ``main(argv)``.

Each test asserts exit code 0 plus load-bearing substrings in captured
stdout — cheap insurance that argument wiring, imports and renderers
stay hooked together.
"""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_table1(capsys):
    code, out, _ = run_cli(capsys, "table1")
    assert code == 0
    assert "Table 1 (reproduced)" in out
    assert "Aggregates:" in out
    for kernel in ("fir", "decfir", "mat", "imi", "pat", "bic"):
        assert kernel in out


def test_kernel_trace(capsys):
    code, out, _ = run_cli(capsys, "kernel", "fir", "--trace")
    assert code == 0
    assert "fir under a 64-register budget" in out
    assert "CPA-RA decision trace:" in out
    assert "baseline: 1 register" in out


def test_vhdl(capsys):
    code, out, _ = run_cli(capsys, "vhdl", "fir")
    assert code == 0
    assert "entity fir_cpa_ra is" in out
    assert "end architecture behavioral;" in out


def test_figure2(capsys):
    code, out, _ = run_cli(capsys, "figure2")
    assert code == 0
    assert "Figure 2(c), reproduced" in out


def test_list(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    assert "fir" in out and "bic" in out
    assert "CPA-RA" in out and "KS-RA" in out
    assert "xcv1000-bg560" in out


def test_explore_table(capsys, tmp_path):
    argv = (
        "explore", "--kernels", "fir", "--allocators", "FR-RA", "PR-RA",
        "--budgets", "8", "16", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"), "--resume",
    )
    code, out, err = run_cli(capsys, *argv)
    assert code == 0
    assert "explored 4 design points" in out
    assert "PR-RA" in out
    assert "4 points: 4 evaluated, 0 cache hits" in err

    # Resumed run: everything from cache, zero re-evaluations.
    code, out, err = run_cli(capsys, *argv)
    assert code == 0
    assert "0 evaluated, 4 cache hits (100%)" in err


def test_explore_cache_dir_implies_resume(capsys, tmp_path):
    argv = (
        "explore", "--kernels", "fir", "--allocators", "FR-RA", "NO-SR",
        "--budgets", "8", "--cache-dir", str(tmp_path / "cache"),
    )
    # No --resume needed: a cache directory is reused by default.
    code, _, err = run_cli(capsys, *argv)
    assert code == 0
    assert "2 points: 2 evaluated, 0 cache hits" in err
    code, _, err = run_cli(capsys, *argv)
    assert code == 0
    assert "0 evaluated, 2 cache hits (100%)" in err
    # --fresh forces re-evaluation even with a populated cache.
    code, _, err = run_cli(capsys, *argv, "--fresh")
    assert code == 0
    assert "2 evaluated, 0 cache hits" in err
    # ... and the rewritten entries are still reusable afterwards.
    code, _, err = run_cli(capsys, *argv)
    assert code == 0
    assert "0 evaluated, 2 cache hits (100%)" in err


def test_explore_resume_and_fresh_conflict(capsys, tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "explore", "--kernels", "fir", "--budgets", "8",
            "--cache-dir", str(tmp_path), "--resume", "--fresh",
        ])
    assert excinfo.value.code != 0


def test_explore_sharded_stitch(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    base = (
        "explore", "--kernels", "fir", "mat", "--allocators",
        "FR-RA", "NO-SR", "--budgets", "8", "16", "--cache-dir", cache,
    )
    # Reference run into a separate cache: the full space, evaluated.
    code, full_out, _ = run_cli(
        capsys, *base[:-1], str(tmp_path / "other"), "--format", "json",
    )
    assert code == 0

    # Two disjoint shards share one cache directory...
    totals = []
    for shard in ("1/2", "2/2"):
        code, out, err = run_cli(capsys, *base, "--shard", shard)
        assert code == 0
        assert "shard " + shard in out
        assert "0 cache hits" in err  # disjoint shards never overlap
        totals.append(int(err.split(" points:")[0].split()[-1]))
    assert sum(totals) == 8

    # ...and the unsharded resume stitches the full set from cache,
    # bit-identical to the reference evaluation.
    code, out, err = run_cli(capsys, *base, "--format", "json")
    assert code == 0
    assert "8 points: 0 evaluated, 8 cache hits (100%)" in err
    assert json.loads(out)["records"] == json.loads(full_out)["records"]


def test_explore_bad_shard_spec(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["explore", "--kernels", "fir", "--shard", "3/2"])
    assert excinfo.value.code != 0


def test_explore_json(capsys):
    code, out, _ = run_cli(
        capsys, "explore", "--kernels", "mat", "--allocators", "NO-SR",
        "--budgets", "8", "--format", "json",
    )
    assert code == 0
    doc = json.loads(out)
    assert doc["stats"]["total"] == 1
    assert doc["records"][0]["query"]["kernel"] == "mat"
    assert doc["records"][0]["cycles"] > 0


def test_explore_csv(capsys):
    code, out, _ = run_cli(
        capsys, "explore", "--kernels", "mat", "--allocators", "NO-SR",
        "--budgets", "8", "--format", "csv",
    )
    assert code == 0
    header, row = out.splitlines()[:2]
    assert header.startswith("kernel,allocator,budget")
    assert row.startswith("mat,NO-SR,8")


def test_unknown_command_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code != 0
