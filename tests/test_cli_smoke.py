"""CLI smoke tests: every subcommand through ``main(argv)``.

Each test asserts exit code 0 plus load-bearing substrings in captured
stdout — cheap insurance that argument wiring, imports and renderers
stay hooked together.
"""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_table1(capsys):
    code, out, _ = run_cli(capsys, "table1")
    assert code == 0
    assert "Table 1 (reproduced)" in out
    assert "Aggregates:" in out
    for kernel in ("fir", "decfir", "mat", "imi", "pat", "bic"):
        assert kernel in out


def test_kernel_trace(capsys):
    code, out, _ = run_cli(capsys, "kernel", "fir", "--trace")
    assert code == 0
    assert "fir under a 64-register budget" in out
    assert "CPA-RA decision trace:" in out
    assert "baseline: 1 register" in out


def test_vhdl(capsys):
    code, out, _ = run_cli(capsys, "vhdl", "fir")
    assert code == 0
    assert "entity fir_cpa_ra is" in out
    assert "end architecture behavioral;" in out


def test_figure2(capsys):
    code, out, _ = run_cli(capsys, "figure2")
    assert code == 0
    assert "Figure 2(c), reproduced" in out


def test_list(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    assert "fir" in out and "bic" in out
    assert "CPA-RA" in out and "KS-RA" in out
    assert "xcv1000-bg560" in out


def test_explore_table(capsys, tmp_path):
    argv = (
        "explore", "--kernels", "fir", "--allocators", "FR-RA", "PR-RA",
        "--budgets", "8", "16", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"), "--resume",
    )
    code, out, err = run_cli(capsys, *argv)
    assert code == 0
    assert "explored 4 design points" in out
    assert "PR-RA" in out
    assert "4 points: 4 evaluated, 0 cache hits" in err

    # Resumed run: everything from cache, zero re-evaluations.
    code, out, err = run_cli(capsys, *argv)
    assert code == 0
    assert "0 evaluated, 4 cache hits (100%)" in err


def test_explore_json(capsys):
    code, out, _ = run_cli(
        capsys, "explore", "--kernels", "mat", "--allocators", "NO-SR",
        "--budgets", "8", "--format", "json",
    )
    assert code == 0
    doc = json.loads(out)
    assert doc["stats"]["total"] == 1
    assert doc["records"][0]["query"]["kernel"] == "mat"
    assert doc["records"][0]["cycles"] > 0


def test_explore_csv(capsys):
    code, out, _ = run_cli(
        capsys, "explore", "--kernels", "mat", "--allocators", "NO-SR",
        "--budgets", "8", "--format", "csv",
    )
    assert code == 0
    header, row = out.splitlines()[:2]
    assert header.startswith("kernel,allocator,budget")
    assert row.startswith("mat,NO-SR,8")


def test_unknown_command_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code != 0
