"""Shared fixtures: the paper's running example and small test kernels."""

from __future__ import annotations

import pytest

from repro.bench.example import build_example_kernel
from repro.ir import INT16, INT32, KernelBuilder


@pytest.fixture(scope="session")
def example_kernel():
    """The Figure 1 kernel at the reconstructed bounds (4, 20, 30)."""
    return build_example_kernel()


@pytest.fixture(scope="session")
def tiny_example_kernel():
    """The Figure 1 kernel at tiny bounds for fast functional tests."""
    return build_example_kernel(ni=2, nj=4, nk=5)


@pytest.fixture()
def small_fir():
    """An 8-output, 4-tap FIR — fast enough for exhaustive simulation."""
    from repro.kernels import build_fir

    return build_fir(n=8, taps=4)


@pytest.fixture()
def small_mat():
    """A 4x4 matrix multiply."""
    from repro.kernels import build_mat

    return build_mat(n=4)


def make_copy_kernel(n: int = 6, m: int = 5):
    """out[i][j] = src[j]: one invariant read, one plain write."""
    b = KernelBuilder("copyk")
    i = b.loop("i", n)
    j = b.loop("j", m)
    src = b.array("src", (m,), INT16)
    out = b.array("out", (n, m), INT32, role="output")
    b.assign(out[i, j], src[j] + 0)
    return b.build()


@pytest.fixture()
def copy_kernel():
    return make_copy_kernel()
