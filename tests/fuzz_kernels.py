"""Random affine kernel generator for property/fuzz tests.

Generates small, always-valid kernels: random nest depth and loop
bounds, random affine references (invariant scalars, sliding windows
with random strides and offsets — i.e. random reuse distances — and
multi-dimensional mixes), and an accumulator-style output.  Array
extents are derived from each subscript's maximum value, so every
generated kernel passes :func:`repro.ir.validate.validate_kernel` by
construction.

Everything is seeded: ``random_case(seed)`` is deterministic, so a
failing case is reproducible from its test id alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.groups import RefGroup, build_groups
from repro.ir import INT16, INT32, Kernel, KernelBuilder

__all__ = [
    "FuzzCase",
    "random_kernel",
    "random_case",
    "oracle_case",
    "random_stream",
    "random_tiled_stream",
]

#: Iteration-space ceiling: big enough for multi-row steady states,
#: small enough that a hundred cases stay interactive.
MAX_SPACE = 400


@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario: a kernel, its groups and a feasible budget."""

    seed: int
    kernel: Kernel
    groups: tuple[RefGroup, ...]
    budget: int


def _random_bounds(rng: random.Random) -> list[int]:
    depth = rng.choice((1, 2, 2, 2, 3))
    while True:
        bounds = [rng.randint(2, 10) for _ in range(depth)]
        space = 1
        for bound in bounds:
            space *= bound
        if space <= MAX_SPACE:
            return bounds


def _random_subscript(rng: random.Random, loops, bounds):
    """A random affine expression over the loop handles, plus its max value.

    Coefficients favour 0/1 (invariance and plain windows) with an
    occasional 2 (strided windows); a random offset shifts the reuse
    distance.
    """
    expr = None
    high = 0
    for handle, bound in zip(loops, bounds):
        coeff = rng.choice((0, 0, 1, 1, 1, 2))
        if coeff == 0:
            continue
        term = handle * coeff  # always an AffineIndex, so sums compose
        expr = term if expr is None else expr + term
        high += coeff * (bound - 1)
    offset = rng.randint(0, 3)
    if expr is None:
        expr = offset
        # a constant subscript: a genuinely loop-invariant scalar load
    elif offset:
        expr = expr + offset
    return expr, high + offset


def random_kernel(seed: int) -> Kernel:
    """A small random affine kernel (deterministic per seed)."""
    rng = random.Random(seed)
    bounds = _random_bounds(rng)
    builder = KernelBuilder(f"fuzz{seed}", f"random kernel, seed {seed}")
    loops = [builder.loop(f"i{d}", bound) for d, bound in enumerate(bounds)]

    value = None
    for index in range(rng.randint(1, 3)):
        dims = rng.choice((1, 1, 1, 2))
        subscripts, extents = [], []
        for _ in range(dims):
            expr, high = _random_subscript(rng, loops, bounds)
            subscripts.append(expr)
            extents.append(high + 1)
        handle = builder.array(f"a{index}", tuple(extents), INT16)
        load = handle[tuple(subscripts)] if dims > 1 else handle[subscripts[0]]
        if value is None:
            value = load
        elif rng.random() < 0.5:
            value = value + load
        else:
            value = value * load

    # Accumulator-style output indexed by a prefix of the loops, so the
    # write is invariant in the remaining (inner) loops.
    out_depth = rng.randint(1, len(loops))
    out_shape = tuple(bound for bound in bounds[:out_depth])
    out = builder.array("y", out_shape, INT32, role="output")
    target_index = tuple(loops[:out_depth])
    target = out[target_index] if out_depth > 1 else out[target_index[0]]
    builder.assign(target, target + value)
    return builder.build()


def random_case(seed: int) -> FuzzCase:
    """A kernel plus a feasible budget drawn from [floor, floor+betas]."""
    kernel = random_kernel(seed)
    groups = build_groups(kernel)
    rng = random.Random(seed ^ 0x5EED)
    floor = len(groups)
    betas = sum(group.full_registers for group in groups)
    budget = rng.randint(floor, max(floor, min(floor + betas, 64)))
    return FuzzCase(seed=seed, kernel=kernel, groups=groups, budget=budget)


def oracle_case(seed: int) -> FuzzCase:
    """Like :func:`random_case`, with a budget tight enough to brute-force.

    The kernel is the same per seed; only the budget draw differs — at
    most eight extra registers above the mandatory floor, so exhaustive
    subset enumeration (and OPT-RA's certified search) stays cheap in
    the differential-oracle suites.
    """
    kernel = random_kernel(seed)
    groups = build_groups(kernel)
    rng = random.Random(seed ^ 0x09AC1E)
    floor = len(groups)
    betas = sum(group.full_registers for group in groups)
    budget = rng.randint(floor, max(floor, min(floor + betas, floor + 8)))
    return FuzzCase(seed=seed, kernel=kernel, groups=groups, budget=budget)


def random_stream(seed: int) -> "tuple[list[int], int, int]":
    """A random address stream plus (capacity, row_len) for trace fuzzing.

    ``row_len`` always divides the stream length; small address ranges
    force heavy reuse and eviction traffic.
    """
    rng = random.Random(seed)
    rows = rng.randint(1, 12)
    row_len = rng.randint(1, 12)
    span = rng.randint(1, 10)
    shift = rng.choice((0, 0, 1, 1, 2, -1))
    addresses = []
    base = rng.randint(0, 5)
    for row in range(rows):
        start = base + shift * row
        addresses.extend(
            max(0, start + rng.randint(0, span)) for _ in range(row_len)
        )
    capacity = rng.randint(0, 6)
    return addresses, capacity, row_len


def random_tiled_stream(seed: int) -> "tuple[list[int], int, tuple[int, int]]":
    """An inner-tile-periodic stream whose outer rows never repeat.

    Each row consists of ``tiles`` tiles carrying the *same* relative
    address pattern, but the stride between tile bases strictly grows
    from row to row — so no two rows are shift-equal (the outer-row
    memo never replays) while tiles are (the period-ladder case).
    Returns ``(addresses, capacity, periods)`` with
    ``periods = (row_len, tile_len)``, both dividing the stream length.
    """
    rng = random.Random(seed ^ 0x711E)
    tiles = rng.randint(2, 4)
    tile_len = rng.randint(2, 6)
    rows = rng.randint(2, 6)
    pattern = [rng.randint(0, tile_len + 2) for _ in range(tile_len)]
    base_stride = rng.randint(1, 3)
    addresses: list[int] = []
    for row in range(rows):
        stride = base_stride + row  # strictly growing: rows never repeat
        row_base = rng.randint(0, 4) + row * rng.randint(0, 3)
        for tile in range(tiles):
            tile_base = row_base + tile * stride
            addresses.extend(tile_base + offset for offset in pattern)
    capacity = rng.randint(0, 6)
    return addresses, capacity, (tiles * tile_len, tile_len)
