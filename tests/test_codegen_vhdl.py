"""Tests for the behavioral VHDL emitter."""

import pytest

from repro.analysis import build_groups
from repro.codegen import generate_vhdl
from repro.core import (
    CriticalPathAwareAllocator,
    FullReuseAllocator,
    NaiveAllocator,
)
from repro.kernels import build_fir, paper_kernels


class TestStructure:
    def test_entity_and_architecture(self, example_kernel):
        alloc = FullReuseAllocator().allocate(example_kernel, 64)
        vhdl = generate_vhdl(example_kernel, alloc)
        assert "entity example_fr_ra is" in vhdl
        assert "architecture behavioral of example_fr_ra is" in vhdl
        assert vhdl.count("end entity") == 1
        assert vhdl.count("end architecture") == 1

    def test_register_banks_match_allocation(self, example_kernel):
        groups = build_groups(example_kernel)
        alloc = FullReuseAllocator().allocate(example_kernel, 64, groups)
        vhdl = generate_vhdl(example_kernel, alloc, groups)
        # a[k] got 30 registers -> bank indices 0..29.
        assert "array (0 to 29)" in vhdl   # a[k]
        assert "array (0 to 19)" in vhdl   # c[j]

    def test_ram_ports_for_uncovered_arrays(self, example_kernel):
        alloc = NaiveAllocator().allocate(example_kernel, 64)
        vhdl = generate_vhdl(example_kernel, alloc)
        for array in ("a", "b", "c", "d", "e"):
            assert f"{array}_addr" in vhdl
            assert f"{array}_din" in vhdl

    def test_fully_covered_inputs_have_no_ports(self, example_kernel):
        # FR-RA covers a and c fully: they become register-initialized.
        alloc = FullReuseAllocator().allocate(example_kernel, 64)
        vhdl = generate_vhdl(example_kernel, alloc)
        assert "a_addr" not in vhdl
        assert "c_addr" not in vhdl
        assert "b_addr" in vhdl  # uncovered stays on RAM

    def test_fsm_states_cover_statements(self, example_kernel):
        alloc = NaiveAllocator().allocate(example_kernel, 64)
        vhdl = generate_vhdl(example_kernel, alloc)
        assert "S_STMT0" in vhdl and "S_STMT1" in vhdl
        assert "S_PROLOGUE" in vhdl and "S_WRITEBACK" in vhdl

    def test_loop_counters_declared(self, example_kernel):
        alloc = NaiveAllocator().allocate(example_kernel, 64)
        vhdl = generate_vhdl(example_kernel, alloc)
        for var in ("i", "j", "k"):
            assert f"{var}_ctr" in vhdl

    def test_comparison_kernel_emits_helper(self):
        from repro.kernels import build_pat

        kern = build_pat(text_len=32, pattern_len=4)
        alloc = NaiveAllocator().allocate(kern, 16)
        vhdl = generate_vhdl(kern, alloc)
        assert "bool_to_signed" in vhdl


class TestAllKernels:
    @pytest.mark.parametrize("kernel", paper_kernels(), ids=lambda k: k.name)
    def test_generation_succeeds(self, kernel):
        groups = build_groups(kernel)
        alloc = CriticalPathAwareAllocator().allocate(kernel, 64, groups)
        vhdl = generate_vhdl(kernel, alloc, groups)
        assert "rising_edge(clk)" in vhdl
        # Balanced process block.
        assert vhdl.count("process") == 2  # open + end

    def test_different_allocations_differ(self):
        kernel = build_fir(n=32, taps=8)
        groups = build_groups(kernel)
        naive = NaiveAllocator().allocate(kernel, 16, groups)
        cpa = CriticalPathAwareAllocator().allocate(kernel, 16, groups)
        assert generate_vhdl(kernel, naive, groups) != generate_vhdl(
            kernel, cpa, groups
        )
