"""``repro lint``: the fixture corpus pins every check's exact findings.

Three layers:

* framework unit tests (suppression parsing, AST cache, check registry,
  knob discovery over the real tree);
* the fixture corpus under ``tests/lint_fixtures/lintfix`` — one module
  per positive/negative example, with the *exact* expected findings
  (check, code, line) pinned, including the reverted-PR-6-shaped
  ``missing_key`` module;
* the self-clean contract: ``repro lint --strict`` over the shipped
  ``src/repro`` tree produces zero unsuppressed findings, and every
  suppression carries a justification.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.lint import CHECKS, run_lint
from repro.lint.framework import (
    FALLBACK_KNOBS,
    LintContext,
    _load_unit,
    _parse_suppressions,
)

FIXTURES = Path(__file__).parent / "lint_fixtures" / "lintfix"


def fixture_report(checks=None):
    return run_lint(root=FIXTURES, package="lintfix", checks=checks)


def triples(report, path):
    """(check, code, line) per finding of one fixture module, sorted."""
    return [
        (f.check, f.code, f.line)
        for f in report.findings
        if f.path == f"lintfix/{path}"
    ]


# -- framework ---------------------------------------------------------------


def test_registered_checks():
    assert sorted(CHECKS) == [
        "determinism", "memo-keys", "version-cone", "worker-safety",
    ]


def test_unknown_check_rejected():
    with pytest.raises(ReproError, match="unknown lint check"):
        run_lint(root=FIXTURES, package="lintfix", checks=["no-such-check"])


def test_suppression_parsing():
    src = "\n".join([
        "x = 1  # repro-lint: ok determinism:id-key -- guarded by is",
        "# repro-lint: ok-file memo-keys",
        "# repro-lint: ok determinism:env-read, version-cone -- why not",
    ])
    supps = _parse_suppressions(src)
    assert [s.line for s in supps] == [1, 2, 3]
    assert supps[0].specs == (("determinism", "id-key"),)
    assert supps[0].justification == "guarded by is"
    assert not supps[0].file_level
    assert supps[1].file_level and supps[1].justification == ""
    assert supps[2].specs == (
        ("determinism", "env-read"), ("version-cone", None),
    )


def test_ast_cache_shared_across_runs():
    path = FIXTURES / "nondet.py"
    assert _load_unit("lintfix.nondet", path) is _load_unit(
        "lintfix.nondet", path
    )


def test_knob_discovery_real_tree():
    context = LintContext()
    assert context.knobs() == frozenset(
        {"batch", "context", "engine", "ladder", "trace_engine"}
    )
    maps = {(m.module, m.name) for m in context.dispatch_maps()}
    assert ("repro.kernels.registry", "KERNEL_FACTORIES") in maps
    assert ("repro.core.pipeline", "_ALLOCATORS") in maps


def test_knob_fallback_on_fixture_tree():
    context = LintContext(root=FIXTURES, package="lintfix")
    assert context.knobs() == FALLBACK_KNOBS
    # No lintfix.explore.evaluate -> the cone is the whole tree.
    assert context.cone() == frozenset(context.units())


# -- the fixture corpus: exact findings per module ---------------------------


def test_missing_key_flags_exactly_the_pr6_shape():
    report = fixture_report(checks=["memo-keys"])
    findings = [f for f in report.findings if f.check == "memo-keys"]
    assert [(f.path, f.code, f.line) for f in findings] == [
        ("lintfix/missing_key.py", "missing-knob", 12),
    ]
    assert "'ladder'" in findings[0].message
    # batch/engine reach the key, so only ladder is reported.
    assert "'batch'" not in findings[0].message


def test_complete_key_is_clean():
    report = fixture_report()
    assert triples(report, "complete_key.py") == []
    assert triples(report, "dispatch.py") == []
    assert triples(report, "plugins_a.py") == []
    assert triples(report, "plugins_b.py") == []


def test_nondet_one_finding_per_code():
    assert triples(fixture_report(), "nondet.py") == [
        ("determinism", "wall-clock", 9),
        ("determinism", "unseeded-random", 13),
        ("determinism", "env-read", 17),
        ("determinism", "id-key", 21),
        ("determinism", "set-iteration", 27),
        ("determinism", "unordered-reduction", 33),
    ]


def test_dynamic_cone_findings():
    assert triples(fixture_report(), "dynamic_cone.py") == [
        ("version-cone", "mutable-global", 9),
        ("version-cone", "dynamic-import", 10),
        ("version-cone", "dynamic-import", 11),
    ]


def test_wholesale_findings():
    assert triples(fixture_report(), "wholesale.py") == [
        ("version-cone", "wholesale-plugin-use", 9),
        ("version-cone", "wholesale-plugin-use", 13),
        ("version-cone", "late-registration", 17),
    ]


def test_pool_unsafe_findings():
    report = fixture_report()
    assert triples(report, "pool_unsafe.py") == [
        ("worker-safety", "mutable-global-state", 8),
        ("worker-safety", "lambda-to-pool", 13),
        ("worker-safety", "local-callable-to-pool", 18),
        ("worker-safety", "bound-method-to-pool", 19),
    ]
    bound = [
        f for f in report.findings if f.code == "bound-method-to-pool"
    ]
    assert [f.severity for f in bound] == ["warning"]


def test_bare_except_flagged_in_pool_driving_module():
    assert triples(fixture_report(), "bare_except.py") == [
        ("worker-safety", "no-bare-except", 12),
    ]
    # Modules that never touch pool machinery are exempt: nondet.py has
    # no pool imports/submissions, so its handlers are out of scope.
    report = fixture_report(checks=["worker-safety"])
    assert not [
        f for f in report.findings
        if f.code == "no-bare-except" and f.path != "lintfix/bare_except.py"
    ]


def test_sqlite_module_joins_the_cone():
    assert triples(fixture_report(), "sqlite_conn.py") == [
        ("worker-safety", "sqlite-connection-at-import", 11),
        ("worker-safety", "mutable-global-state", 17),
    ]
    # Modules without sqlite3 stay out of the extended cone: the
    # non-cone fixtures with module containers are not re-flagged.
    report = fixture_report(checks=["worker-safety"])
    flagged = {
        f.path for f in report.findings
        if f.code == "sqlite-connection-at-import"
    }
    assert flagged == {"lintfix/sqlite_conn.py"}


def test_suppression_semantics():
    report = fixture_report()
    by_line = {
        f.line: f
        for f in report.findings
        if f.path == "lintfix/suppressed.py"
    }
    justified = by_line[10]
    assert justified.suppressed
    assert justified.justification == (
        "envelope metadata only; never keys a cache entry"
    )
    bare_hygiene = by_line[14]
    assert (bare_hygiene.check, bare_hygiene.code) == (
        "framework", "bare-suppression",
    )
    assert not bare_hygiene.suppressed
    # The bare comment still silences the wall-clock it covers...
    assert by_line[15].suppressed
    # ...but the corpus as a whole does not pass: hygiene keeps it red.
    assert len(report.unsuppressed) == 21
    assert len(report.findings) == 23


def test_check_filter_still_runs_hygiene():
    report = fixture_report(checks=["memo-keys"])
    assert [(f.check, f.code) for f in report.findings] == [
        ("memo-keys", "missing-knob"),
        ("framework", "bare-suppression"),
    ]


# -- self-clean contract over the shipped tree -------------------------------


def test_shipped_tree_is_lint_clean():
    report = run_lint()
    assert report.unsuppressed == ()
    # Deliberate designs are suppressed, never silently dropped — and
    # every suppression records why it is sound.
    assert len(report.findings) >= 10
    assert all(f.justification for f in report.findings if f.suppressed)


# -- CLI ---------------------------------------------------------------------


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_strict_self_clean(capsys):
    code, out, _ = run_cli(capsys, "lint", "--strict")
    assert code == 0
    assert "0 findings" in out


def test_cli_list(capsys):
    code, out, _ = run_cli(capsys, "lint", "--list")
    assert code == 0
    for name in CHECKS:
        assert name in out


def test_cli_fixtures_strict_fails_with_json(capsys, tmp_path):
    out_path = tmp_path / "lint.json"
    code, out, _ = run_cli(
        capsys, "lint", "--root", str(FIXTURES), "--package", "lintfix",
        "--strict", "--format", "json", "--out", str(out_path),
    )
    assert code == 1
    doc = json.loads(out)
    assert doc["unsuppressed"] == 21
    assert json.loads(out_path.read_text()) == doc


def test_cli_check_filter(capsys):
    code, out, _ = run_cli(
        capsys, "lint", "--root", str(FIXTURES), "--package", "lintfix",
        "--check", "worker-safety",
    )
    assert code == 0  # not strict
    assert "lambda-to-pool" in out
    assert "missing-knob" not in out
