"""Cost model and LPT chunk planning (`repro.explore.schedule`)."""

import pytest

from repro.errors import ReproError
from repro.explore import (
    CostModel,
    DesignQuery,
    ExplorationSpace,
    Executor,
    ResultCache,
    plan_chunks,
    static_cost,
)
from repro.explore.schedule import ALLOCATOR_WEIGHT


def q(kernel="fir", allocator="FR-RA", budget=8):
    return DesignQuery(kernel=kernel, allocator=allocator, budget=budget)


class TestStaticCost:
    def test_positive_for_every_registered_point(self):
        for query in ExplorationSpace(budgets=(8, 64)).expand():
            assert static_cost(query) > 0

    def test_allocator_weights_order_the_prior(self):
        # The exact knapsack must be scheduled as the most expensive pass.
        costs = {
            alloc: static_cost(q(allocator=alloc)) for alloc in ALLOCATOR_WEIGHT
        }
        assert costs["KS-RA"] > costs["FR-RA"] > costs["NO-SR"]

    def test_bigger_kernels_cost_more(self):
        from repro.kernels import build_fir

        tiny = DesignQuery.from_kernel(
            build_fir(n=8, taps=4), allocator="FR-RA", budget=8
        )
        assert static_cost(q(kernel="fir")) > static_cost(tiny)

    def test_unbuildable_subject_defaults_instead_of_raising(self):
        broken = DesignQuery(
            kernel="weird", allocator="FR-RA", budget=8,
            kernel_json='{"broken": true}',
        )
        assert static_cost(broken) > 0


class TestCostModel:
    def test_cold_start_is_the_static_prior(self):
        model = CostModel()
        assert model.observations == 0
        assert model.estimate(q()) == static_cost(q())

    def test_exact_pair_mean_wins(self):
        model = CostModel()
        for seconds in (1.0, 3.0):
            model.observe(q(), seconds)
        model.observe(q(allocator="NO-SR"), 100.0)
        assert model.estimate(q()) == pytest.approx(2.0)

    def test_kernel_fallback_scales_by_allocator_weight(self):
        model = CostModel()
        model.observe(q(allocator="FR-RA"), 2.0)
        # KS-RA never measured: kernel mean x its static weight.
        assert model.estimate(q(allocator="KS-RA")) == pytest.approx(
            2.0 * ALLOCATOR_WEIGHT["KS-RA"]
        )

    def test_global_fallback_is_positive_and_prior_ordered(self):
        model = CostModel()
        model.observe(q(kernel="mat"), 5.0)
        fir_ks = model.estimate(q(kernel="fir", allocator="KS-RA"))
        fir_no = model.estimate(q(kernel="fir", allocator="NO-SR"))
        assert fir_ks > fir_no > 0

    def test_from_cache_learns_real_timings(self, tmp_path):
        space = ExplorationSpace(
            kernels=("fir",), allocators=("FR-RA", "NO-SR"), budgets=(8, 16)
        )
        Executor(jobs=1, cache=tmp_path).run(space)
        model = CostModel.from_cache(ResultCache(tmp_path))
        assert model.observations == 4
        for query in space.expand():
            assert model.estimate(query) > 0

    def test_from_cache_tolerates_missing_or_garbage(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        assert CostModel.from_cache(ResultCache(tmp_path)).observations == 0
        assert CostModel.from_cache(None).observations == 0


class TestPlanChunks:
    def test_lpt_balances_known_example(self):
        items = ["a", "b", "c", "d", "e"]
        costs = dict(zip(items, [7.0, 5.0, 4.0, 3.0, 2.0]))
        chunks = plan_chunks(items, costs.__getitem__, bins=2)
        loads = sorted(sum(costs[i] for i in chunk) for chunk in chunks)
        # LPT: {7,3} and {5,4,2} — the optimal 10/11 split here.
        assert loads == [10.0, 11.0]

    def test_partition_is_exact(self):
        items = list(range(17))
        chunks = plan_chunks(items, lambda i: float(i % 5 + 1), bins=4)
        flat = [i for chunk in chunks for i in chunk]
        assert sorted(flat) == items
        assert len(chunks) <= 4

    def test_deterministic(self):
        items = list(range(20))
        cost = lambda i: float(i % 3)  # noqa: E731
        assert plan_chunks(items, cost, 4) == plan_chunks(items, cost, 4)

    def test_more_bins_than_items_collapses(self):
        chunks = plan_chunks([1, 2], lambda _: 1.0, bins=8)
        assert len(chunks) == 2

    def test_empty_and_invalid(self):
        assert plan_chunks([], lambda _: 1.0, bins=3) == []
        with pytest.raises(ReproError):
            plan_chunks([1], lambda _: 1.0, bins=0)

    def test_one_expensive_point_gets_its_own_chunk(self):
        # The motivating failure of the fixed split: a single hot point
        # must not drag cheap siblings into its chunk.
        costs = [100.0] + [1.0] * 9
        chunks = plan_chunks(list(range(10)), lambda i: costs[i], bins=4)
        hot = next(chunk for chunk in chunks if 0 in chunk)
        assert hot == [0]


class TestAdaptiveExecutor:
    def test_warm_cache_schedules_identically_to_cold(self, tmp_path):
        # Scheduling changes chunk shapes only, never results: a warm
        # cost model (second executor, same cache, fresh re-evaluation)
        # reproduces the cold run's records exactly.
        space = ExplorationSpace(
            kernels=("fir", "mat"),
            allocators=("FR-RA", "NO-SR"),
            budgets=(8,),
        )
        cold = Executor(jobs=2, cache=tmp_path).run(space)
        warm = Executor(jobs=2, cache=tmp_path, reuse_cache=False).run(space)
        assert [r.to_dict() for r in cold] == [r.to_dict() for r in warm]
        assert warm.stats.evaluated == 4
