"""Property/fuzz tests: allocator invariants over random affine kernels.

Each seed builds a random kernel (see :mod:`fuzz_kernels`) and asserts,
at a feasible random budget:

* every allocator allocates without error at/above the mandatory floor;
* NO-SR is the RAM-access worst case, and every allocator's cycle count
  is no worse than NO-SR's (scalar replacement only removes accesses);
* the exact knapsack saves at least as many accesses as the greedy
  full-reuse allocator (same 0/1 decision space, DP optimum);
* KS-RA's knapsack objective dominates every allocator's fully-replaced
  set (each such set is a feasible 0/1 solution);
* the batched evaluation path is bit-identical to the reference path:
  coverage masks per group, the whole cycle report, and (sampled) the
  full design record.

The Belady row-memoized trace is additionally fuzzed directly on random
address streams, including row lengths that do not match any steady
state.
"""

import numpy as np
import pytest

from fuzz_kernels import (
    oracle_case,
    random_case,
    random_kernel,
    random_stream,
    random_tiled_stream,
)
from repro.core.optra import OptimalAllocator
from repro.core.pipeline import allocator_by_name
from repro.dfg.latency import LatencyModel
from repro.scalar.coverage import GroupCoverage
from repro.sim.cycles import count_cycles
from repro.sim.residency import (
    OptTraceLadder,
    lru_miss_counts,
    lru_misses,
    opt_miss_ladder,
    opt_misses,
    opt_trace,
    pinned_misses,
)
from repro.synth.estimate import build_design

ALGORITHMS = ("FR-RA", "PR-RA", "CPA-RA", "KS-RA", "NO-SR")
SEEDS = range(120)
MODEL = LatencyModel.realistic(ram_latency=2)


def _reports(case, batch):
    reports = {}
    for algorithm in ALGORITHMS:
        allocation = allocator_by_name(algorithm).allocate(
            case.kernel, case.budget, case.groups
        )
        reports[algorithm] = (
            allocation,
            count_cycles(
                case.kernel, case.groups, allocation, MODEL,
                overhead_per_iteration=1, batch=batch,
            ),
        )
    return reports


def _full_set_objective(allocation, groups) -> int:
    return sum(
        group.full_saved
        for group in groups
        if group.has_reuse
        and allocation.registers_for(group.name) >= group.full_registers
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_allocator_invariants(seed):
    case = random_case(seed)
    reports = _reports(case, batch=True)
    naive_alloc, naive = reports["NO-SR"]

    assert _full_set_objective(naive_alloc, case.groups) == 0
    ks_objective = _full_set_objective(reports["KS-RA"][0], case.groups)
    for algorithm, (allocation, report) in reports.items():
        assert allocation.total_registers <= case.budget, (
            f"seed {seed}: {algorithm} overflowed the budget"
        )
        # NO-SR worst case: replacement only ever removes RAM accesses.
        assert report.total_ram_accesses <= naive.total_ram_accesses, (
            f"seed {seed}: {algorithm} performs more RAM accesses than NO-SR"
        )
        assert report.total_cycles <= naive.total_cycles, (
            f"seed {seed}: {algorithm} is slower than NO-SR"
        )
        # KS-RA objective dominance over every feasible 0/1 full set.
        assert ks_objective >= _full_set_objective(allocation, case.groups), (
            f"seed {seed}: KS-RA objective beaten by {algorithm}"
        )

    saved_ks = (
        naive.total_ram_accesses - reports["KS-RA"][1].total_ram_accesses
    )
    saved_fr = (
        naive.total_ram_accesses - reports["FR-RA"][1].total_ram_accesses
    )
    assert saved_ks >= saved_fr, (
        f"seed {seed}: knapsack saved {saved_ks} < greedy's {saved_fr}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_batched_equals_unbatched(seed):
    case = random_case(seed)
    batched = _reports(case, batch=True)
    reference = _reports(case, batch=False)
    for algorithm in ALGORITHMS:
        allocation, report = batched[algorithm]
        _, expected = reference[algorithm]
        assert report == expected, (
            f"seed {seed}: {algorithm} batched cycle report diverged"
        )
        # Coverage masks are the ground the report stands on — compare
        # them directly too, at the allocated register counts.
        for group in case.groups:
            registers = allocation.registers_for(group.name)
            for anchor in ("low", "high"):
                fast = GroupCoverage(case.kernel, group, batch=True).result(
                    registers, anchor=anchor
                )
                slow = GroupCoverage(case.kernel, group, batch=False).result(
                    registers, anchor=anchor
                )
                assert np.array_equal(fast.read_miss, slow.read_miss)
                assert np.array_equal(fast.write_miss, slow.write_miss)
                assert fast.writeback_stores == slow.writeback_stores
                if fast.window_inserted is not None:
                    assert np.array_equal(
                        fast.window_inserted, slow.window_inserted
                    )
                    assert np.array_equal(
                        fast.window_evicted, slow.window_evicted
                    )
                    assert np.array_equal(fast.window_freed, slow.window_freed)


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_fuzz_full_design_batched_equals_unbatched(seed):
    """End-to-end spot checks: whole HardwareDesign metrics, both paths."""
    case = random_case(seed)
    for algorithm in ("CPA-RA", "PR-RA"):
        allocation = allocator_by_name(algorithm).allocate(
            case.kernel, case.budget, case.groups
        )
        fast = build_design(
            case.kernel, allocation, groups=case.groups, batch=True
        )
        slow = build_design(
            case.kernel, allocation, groups=case.groups, batch=False
        )
        assert fast.cycles == slow.cycles
        assert fast.total_cycles == slow.total_cycles
        assert fast.clock_ns == slow.clock_ns
        assert fast.wall_clock_us == slow.wall_clock_us
        assert fast.slices == slow.slices


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_fuzz_context_equals_no_context(seed):
    """Shared-artifact evaluation is bit-identical on random kernels.

    One :class:`EvalContext` is reused across all seeds on purpose: the
    embedded-JSON kernel keys, the LRU and the per-kernel artifact
    bundles must never leak one random kernel's artifacts into
    another's records.
    """
    import dataclasses

    from repro.explore import DesignQuery, EvalContext
    from repro.explore.evaluate import evaluate_query

    ctx = _shared_fuzz_context()
    case = random_case(seed)
    for algorithm in ALGORITHMS:
        query = DesignQuery.from_kernel(case.kernel, algorithm, case.budget)
        reference = evaluate_query(query, context=False)
        contexted = evaluate_query(query, context=ctx)
        rerun = evaluate_query(query, context=ctx)  # warm artifacts
        for record in (contexted, rerun):
            for f in dataclasses.fields(type(reference)):
                if not f.compare:
                    continue
                assert getattr(record, f.name) == getattr(reference, f.name), (
                    f"seed {seed}/{algorithm}: context diverged on {f.name}"
                )


def _shared_fuzz_context():
    from repro.explore import EvalContext

    global _FUZZ_CONTEXT
    if _FUZZ_CONTEXT is None:
        _FUZZ_CONTEXT = EvalContext(kernel_memo_size=4)
    return _FUZZ_CONTEXT


_FUZZ_CONTEXT = None


def _objective_cycles(case, allocation, ctx):
    """The authoritative design objective (anchor-minimized cycles)."""
    from repro.synth.estimate import (
        classify_operand_storage,
        count_with_best_anchors,
    )

    dfg = ctx.dfg(case.kernel, case.groups)
    coverages = ctx.coverages(case.kernel, case.groups, batch=True)
    storage = {
        g.name: classify_operand_storage(
            g, coverages[g.name], allocation.registers_for(g.name)
        )
        for g in case.groups
    }
    return count_with_best_anchors(
        case.kernel, case.groups, allocation, MODEL, 1, 1, dfg, coverages,
        storage, context=ctx,
    ).total_cycles


def _tuned_optra(**kwargs):
    return OptimalAllocator(**kwargs).tune(
        model=MODEL, ram_ports=1, overhead_per_iteration=1
    )


@pytest.mark.oracle
@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_optra_differential(seed):
    """OPT-RA's contract on the 120-seed corpus.

    Dominance over every heuristic, infeasibility agreement below the
    mandatory floor, budget monotonicity of the certified optimum, and
    the truncated (certified-gap) run bracketing the heuristics.
    """
    from repro.errors import AllocationError

    case = oracle_case(seed)
    ctx = _shared_fuzz_context()
    opt = _tuned_optra().allocate(
        case.kernel, case.budget, case.groups, context=ctx
    )
    assert opt.certified, f"seed {seed}: default box truncated a tiny search"
    opt_cycles = _objective_cycles(case, opt, ctx)
    assert opt.lower_bound == opt_cycles, (
        f"seed {seed}: certified bound {opt.lower_bound} != achieved "
        f"{opt_cycles}"
    )

    heuristic_cycles = {}
    for algorithm in ALGORITHMS:
        allocation = allocator_by_name(algorithm).allocate(
            case.kernel, case.budget, case.groups, context=ctx
        )
        heuristic_cycles[algorithm] = _objective_cycles(case, allocation, ctx)
        assert opt_cycles <= heuristic_cycles[algorithm], (
            f"seed {seed}: OPT-RA {opt_cycles} worse than "
            f"{algorithm} {heuristic_cycles[algorithm]}"
        )

    # Infeasibility agreement: below the mandatory floor, everyone
    # raises the same error type.
    for algorithm in ("OPT-RA",) + ALGORITHMS:
        with pytest.raises(AllocationError):
            allocator_by_name(algorithm).allocate(
                case.kernel, len(case.groups) - 1, case.groups
            )

    # Budget monotonicity: the optimum never worsens as budget grows.
    floor_alloc = _tuned_optra().allocate(
        case.kernel, len(case.groups), case.groups, context=ctx
    )
    assert opt_cycles <= _objective_cycles(case, floor_alloc, ctx), (
        f"seed {seed}: optimum worsened as the budget grew"
    )

    # Certified-gap runs: a node-boxed search still brackets the
    # optimum and every heuristic, deterministically.
    boxed = _tuned_optra(node_limit=1).allocate(
        case.kernel, case.budget, case.groups
    )
    boxed_cycles = _objective_cycles(case, boxed, ctx)
    assert boxed.lower_bound <= opt_cycles <= boxed_cycles, (
        f"seed {seed}: anytime bracket [{boxed.lower_bound}, "
        f"{boxed_cycles}] misses the optimum {opt_cycles}"
    )
    assert boxed_cycles <= min(heuristic_cycles.values()), (
        f"seed {seed}: truncated OPT-RA lost to a heuristic seed"
    )


def test_fuzz_generator_is_deterministic():
    for seed in (0, 7, 42):
        assert random_kernel(seed) == random_kernel(seed)
        assert random_case(seed).budget == random_case(seed).budget
        assert oracle_case(seed).budget == oracle_case(seed).budget


def test_fuzz_opt_trace_row_memoization():
    """Row-batched Belady is bit-identical on 200 random streams."""
    for seed in range(200):
        addresses, capacity, row_len = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        plain = opt_trace(stream, capacity)
        rowed = opt_trace(stream, capacity, row_len=row_len)
        for left, right in zip(plain, rowed):
            assert np.array_equal(left, right), (
                f"stream seed {seed} (capacity {capacity}, row {row_len})"
            )


def _assert_traces_equal(expected, got, label):
    for name, left, right in zip(
        ("misses", "inserted", "evicted", "freed"), expected, got
    ):
        assert np.array_equal(left, right), f"{label}: {name} diverged"


def test_fuzz_trace_engines_bit_identical():
    """Array vs reference engine: all four trace arrays, every mode.

    Covers plain spans, the single-row memo, period ladders, and the
    non-divisor ``row_len`` fallback, on 150 random streams.
    """
    for seed in range(150):
        addresses, capacity, row_len = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        reference = opt_trace(stream, capacity, engine="reference")
        variants = (
            {},
            {"row_len": row_len},
            {"periods": (row_len,)},
            {"periods": (row_len, max(1, row_len // 2))},
            {"row_len": row_len + 1},  # non-divisor: plain fallback
            {"periods": (row_len, row_len + 1, 1)},  # broken chain pruned
        )
        for kwargs in variants:
            got = opt_trace(stream, capacity, engine="array", **kwargs)
            _assert_traces_equal(
                reference, got,
                f"seed {seed} (capacity {capacity}, {kwargs})",
            )
        rowed = opt_trace(
            stream, capacity, row_len=row_len, engine="reference"
        )
        _assert_traces_equal(
            reference, rowed, f"seed {seed} reference rowed"
        )


def test_fuzz_tiled_streams_ladder_bit_identical():
    """Inner-tile-periodic streams whose outer rows never repeat.

    The period-ladder case the array engine exists for: the row-level
    memo cannot replay anything, the tile level can — and the output
    must equal the reference plain simulation exactly.
    """
    for seed in range(120):
        addresses, capacity, periods = random_tiled_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        reference = opt_trace(stream, capacity, engine="reference")
        for kwargs in (
            {"periods": periods},
            {"periods": periods[:1]},
            {"periods": periods[1:]},
        ):
            got = opt_trace(stream, capacity, engine="array", **kwargs)
            _assert_traces_equal(
                reference, got, f"tiled seed {seed} ({kwargs})"
            )


def test_fuzz_budget_ladder_miss_counts_bit_identical():
    """The whole-axis ladders == per-capacity calls on random streams.

    ``lru_miss_counts`` (one histogram + suffix sum) and
    ``opt_miss_ladder`` (shared lazy-deletion-heap plane) must agree
    with the per-capacity APIs at every rung, including capacity 0 and
    capacities past the footprint.
    """
    for seed in SEEDS:
        addresses, capacity, _ = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        footprint = len(set(addresses))
        rungs = sorted({0, 1, 2, capacity, footprint, footprint + 7})
        lru_ladder = lru_miss_counts(stream, rungs)
        opt_ladder = opt_miss_ladder(stream, rungs)
        for rung in rungs:
            assert lru_ladder[rung] == int(lru_misses(stream, rung).sum()), (
                f"lru ladder seed {seed} capacity {rung}"
            )
            assert opt_ladder[rung] == int(opt_misses(stream, rung).sum()), (
                f"opt ladder seed {seed} capacity {rung}"
            )


def test_fuzz_trace_plane_shared_across_capacities():
    """One ``OptTraceLadder`` plane, many capacities == fresh traces.

    Tiled streams exercise the period memo; interleaving small and
    large capacities on the same plane checks that nothing capacity-
    dependent leaks into the shared links or levels.
    """
    for seed in range(60):
        addresses, capacity, periods = random_tiled_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        plane = OptTraceLadder(stream, periods=periods)
        for rung in (capacity, 0, capacity + 5, 1, capacity):
            fresh = opt_trace(stream, rung, periods=periods)
            _assert_traces_equal(
                fresh, plane.trace(rung), f"plane seed {seed} cap {rung}"
            )


def test_fuzz_lru_and_pinned_engines_agree():
    """Stack-distance LRU and first-touch pinned == the reference loops."""
    import random as _random

    for seed in range(120):
        addresses, _, _ = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        for capacity in (0, 1, 2, 3, 5, 9, 64):
            fast = lru_misses(stream, capacity, engine="array")
            slow = lru_misses(stream, capacity, engine="reference")
            assert np.array_equal(fast, slow), (
                f"lru seed {seed} capacity {capacity}"
            )
        rng = _random.Random(seed)
        universe = sorted(set(addresses)) or [0]
        pinned = set(rng.sample(universe, rng.randint(0, len(universe))))
        fast = pinned_misses(stream, pinned, engine="array")
        slow = pinned_misses(stream, pinned, engine="reference")
        assert np.array_equal(fast, slow), f"pinned seed {seed}"


def test_fuzz_opt_misses_heap_matches_max_scan():
    """The lazy-deletion heap == the O(r) max-scan oracle, large caps too.

    Pins the satellite claim that heap tie-breaking among never-reused
    residents cannot change miss flags — including capacities at and
    beyond the footprint, where every resident ends up dead.
    """

    def max_scan_reference(stream, capacity):
        n = len(stream)
        misses = np.ones(n, dtype=bool)
        if capacity == 0:
            return misses
        addresses = stream.tolist()
        next_use = [float("inf")] * n
        last_seen = {}
        for position in range(n - 1, -1, -1):
            next_use[position] = last_seen.get(addresses[position], float("inf"))
            last_seen[addresses[position]] = position
        resident = {}
        for position, address in enumerate(addresses):
            if address in resident:
                misses[position] = False
            else:
                if len(resident) >= capacity:
                    victim = max(resident, key=lambda a: resident[a])
                    del resident[victim]
            resident[address] = next_use[position]
        return misses

    for seed in range(120):
        addresses, _, _ = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        footprint = len(set(addresses))
        for capacity in (0, 1, 2, 4, footprint, footprint + 7, 256):
            got = opt_misses(stream, capacity)
            want = max_scan_reference(stream, capacity)
            assert np.array_equal(got, want), (
                f"opt seed {seed} capacity {capacity}"
            )


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_fuzz_coverage_engines_equal(seed):
    """Array-engine coverage masks == reference-engine masks, both batches."""
    case = random_case(seed)
    for group in case.groups:
        for registers in {0, 1, 2, case.budget, group.full_registers}:
            for batch in (True, False):
                for anchor in ("low", "high"):
                    fast = GroupCoverage(
                        case.kernel, group, batch=batch, engine="array"
                    ).result(registers, anchor=anchor)
                    slow = GroupCoverage(
                        case.kernel, group, batch=batch, engine="reference"
                    ).result(registers, anchor=anchor)
                    assert np.array_equal(fast.read_miss, slow.read_miss)
                    assert np.array_equal(fast.write_miss, slow.write_miss)
                    assert fast.writeback_stores == slow.writeback_stores
                    if fast.window_inserted is not None:
                        assert np.array_equal(
                            fast.window_inserted, slow.window_inserted
                        )
                        assert np.array_equal(
                            fast.window_evicted, slow.window_evicted
                        )
                        assert np.array_equal(
                            fast.window_freed, slow.window_freed
                        )
