"""Cache backend tests (PR 10): DirBackend/SqliteBackend parity.

Both backends must be observably identical through the
:class:`ResultCache` facade — same format-3 entry docs, same
corruption/quarantine behaviour, same fsck/gc accounting, same
cost-model persistence — and the SQLite backend must additionally
survive two *processes* sweeping disjoint shards into one database
file concurrently.
"""

import errno
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.explore import (
    CacheCorruptionWarning,
    DeadlinePolicy,
    DirBackend,
    Executor,
    ExplorationSpace,
    ResultCache,
    RetryPolicy,
    SqliteBackend,
    backend_for,
)

SPACE = ExplorationSpace(
    kernels=("fir", "mat"), allocators=("FR-RA", "NO-SR"), budgets=(8,)
)
QUERIES = SPACE.expand()
TARGET = QUERIES[0]

FAST = dict(
    deadlines=DeadlinePolicy(timeout_factor=1.0, floor=2.5, ceiling=2.5),
    retry=RetryPolicy(max_retries=2, backoff=0.0),
)

BACKENDS = ("dir", "sqlite")


def make_cache(tmp_path, backend):
    if backend == "dir":
        return ResultCache(tmp_path / "cache")
    return ResultCache(f"sqlite:{tmp_path / 'cache.db'}")


def sweep(cache=None, **kwargs):
    opts = dict(FAST)
    opts.update(kwargs)
    return Executor(cache=cache, **opts).run(SPACE)


def docs(result):
    return [record.to_dict() for record in result.records]


# -- backend resolution -------------------------------------------------------


def test_backend_for_resolution(tmp_path):
    assert isinstance(backend_for(f"sqlite:{tmp_path}/c.db"), SqliteBackend)
    assert isinstance(backend_for(f"dir:{tmp_path}/c"), DirBackend)
    assert isinstance(backend_for(tmp_path / "c"), DirBackend)
    assert isinstance(backend_for(str(tmp_path / "c")), DirBackend)
    passthrough = DirBackend(tmp_path / "c")
    assert backend_for(passthrough) is passthrough
    with pytest.raises(ReproError):
        backend_for("sqlite:")


def test_sqlite_missing_db_is_a_plain_miss(tmp_path):
    db = tmp_path / "absent.db"
    cache = ResultCache(f"sqlite:{db}")
    assert cache.get(TARGET) is None
    assert len(cache) == 0
    # A pure read must not materialize the database file.
    assert not db.exists()


def test_path_for_rejects_non_directory_backends(tmp_path):
    cache = ResultCache(f"sqlite:{tmp_path / 'c.db'}")
    with pytest.raises(ReproError, match="directory"):
        cache.path_for(TARGET)


def test_sqlite_os_error_translation():
    exc = SqliteBackend._os_error(Exception("database or disk is full"))
    assert isinstance(exc, OSError) and exc.errno == errno.ENOSPC
    exc = SqliteBackend._os_error(
        Exception("attempt to write a readonly database")
    )
    assert isinstance(exc, OSError) and exc.errno == errno.EROFS


# -- parity through the ResultCache facade ------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_sweep_roundtrip_and_resume(backend, tmp_path):
    reference = sweep()
    cache = make_cache(tmp_path, backend)
    first = sweep(cache=cache)
    assert first.stats.evaluated == len(QUERIES)
    assert len(cache) == len(QUERIES)
    resumed = sweep(cache=make_cache(tmp_path, backend))
    assert resumed.stats.cache_hits == len(QUERIES)
    assert resumed.stats.evaluated == 0
    assert docs(resumed) == docs(first) == docs(reference)


@pytest.mark.parametrize("backend", BACKENDS)
def test_corruption_quarantines_and_heals(backend, tmp_path):
    cache = make_cache(tmp_path, backend)
    sweep(cache=cache)
    cache.corrupt_entry(TARGET)
    with pytest.warns(CacheCorruptionWarning, match="quarantined corrupted"):
        resumed = sweep(cache=make_cache(tmp_path, backend))
    assert resumed.stats.cache_hits == len(QUERIES) - 1
    assert resumed.stats.evaluated == 1  # the poisoned point re-ran
    fresh = make_cache(tmp_path, backend)
    assert len(fresh.backend.quarantined()) == 1
    assert fresh.get(TARGET) is not None  # healed by the re-evaluation


@pytest.mark.parametrize("backend", BACKENDS)
def test_fsck_reports_and_repairs(backend, tmp_path):
    cache = make_cache(tmp_path, backend)
    sweep(cache=cache)
    cache.corrupt_entry(TARGET)
    report = cache.fsck(repair=False)
    assert report.scanned == len(QUERIES)
    assert report.ok == len(QUERIES) - 1
    assert len(report.corrupt) == 1
    assert report.quarantined == 0
    assert not report.clean
    assert len(cache.backend.quarantined()) == 0  # report-only
    repaired = cache.fsck(repair=True)
    assert len(repaired.corrupt) == 1
    assert repaired.quarantined == 1
    assert len(cache.backend.quarantined()) == 1
    assert len(cache) == len(QUERIES) - 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_gc_prunes_quarantine_and_stale_formats(backend, tmp_path):
    cache = make_cache(tmp_path, backend)
    sweep(cache=cache)
    cache.corrupt_entry(TARGET)
    cache.fsck(repair=True)  # -> one quarantined blob
    valid = len(cache)  # the repaired cache: every query but the poisoned one
    stale = {"format": 2, "query": {}, "record": {}, "versions": {}}
    cache.backend.write("0" * 16, json.dumps(stale))
    assert len(cache) == valid + 1

    # Young garbage survives a 30-day cutoff...
    untouched = cache.gc(days=30)
    assert untouched.quarantine_removed == 0
    assert untouched.stale_removed == 0
    # ...and falls to an immediate one.
    time.sleep(0.05)
    report = cache.gc(days=0)
    assert report.quarantine_removed == 1
    assert report.stale_removed == 1
    assert report.bytes_reclaimed > 0
    assert "gc: pruned 1 quarantined + 1 stale-format entries" in (
        report.summary()
    )
    assert len(cache.backend.quarantined()) == 0
    assert len(cache) == valid  # valid entries never touched
    with pytest.raises(ReproError):
        cache.gc(days=-1)


@pytest.mark.parametrize("backend", BACKENDS)
def test_cost_model_persists_and_decays(backend, tmp_path):
    cache = make_cache(tmp_path, backend)
    sweep(cache=cache)
    doc = cache.read_meta("cost_model")
    assert doc is not None and doc["version"] == 1
    assert doc["rows"]
    assert all(
        row["weight"] == pytest.approx(1.0) for row in doc["rows"]
    )

    # An all-hits resume times nothing: the fitted model is untouched.
    sweep(cache=make_cache(tmp_path, backend))
    assert cache.read_meta("cost_model") == doc

    # A forced re-evaluation decays the old mass (x0.5) and stacks the
    # fresh run's rows (+1.0) on top.
    sweep(cache=make_cache(tmp_path, backend), reuse_cache=False)
    redoc = cache.read_meta("cost_model")
    assert all(
        row["weight"] == pytest.approx(1.5) for row in redoc["rows"]
    )


# -- two processes, one SQLite file -------------------------------------------


def _spawn_shard(db, shard):
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "explore",
            "--kernels", "fir", "mat",
            "--allocators", "FR-RA", "NO-SR",
            "--budgets", "8", "16",
            "--cache-dir", f"sqlite:{db}",
            "--shard", shard, "--jobs", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def test_two_process_sqlite_concurrency(tmp_path):
    """Two sweeps, one database: disjoint shards written concurrently
    from separate processes, then stitched by an unsharded resume with
    100% hits and records identical to a fresh uncached sweep."""
    db = tmp_path / "shared.db"
    grid = ExplorationSpace(
        kernels=("fir", "mat"),
        allocators=("FR-RA", "NO-SR"),
        budgets=(8, 16),
    )
    procs = [_spawn_shard(db, "1/2"), _spawn_shard(db, "2/2")]
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, f"shard failed:\n{out}\n{err}"

    opts = dict(FAST)
    stitched = Executor(cache=f"sqlite:{db}", **opts).run(grid)
    assert stitched.stats.cache_hits == len(grid.expand()) == 8
    assert stitched.stats.evaluated == 0
    fresh = Executor(**opts).run(grid)
    assert docs(stitched) == docs(fresh)


# -- CLI surfaces -------------------------------------------------------------


def test_cli_sqlite_cache_dir(capsys, tmp_path):
    db = tmp_path / "cli.db"
    code = main([
        "explore", "--kernels", "fir", "--allocators", "FR-RA",
        "--budgets", "8", "--cache-dir", f"sqlite:{db}",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert db.exists()
    code = main([
        "explore", "--kernels", "fir", "--allocators", "FR-RA",
        "--budgets", "8", "--cache-dir", f"sqlite:{db}",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "1 cache hits" in captured.err


def test_cli_cache_fsck_gc(capsys, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sweep(cache=cache)
    cache.corrupt_entry(TARGET)
    cache.fsck(repair=True)
    time.sleep(0.05)
    code = main([
        "cache", "fsck", str(tmp_path / "cache"), "--gc", "--gc-days", "0",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "gc: pruned 1 quarantined" in out
