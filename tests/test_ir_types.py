"""Tests for repro.ir.types: DataType semantics."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir.types import BIT, DataType, INT8, INT16, INT32, UINT8, UINT16


class TestConstruction:
    def test_names(self):
        assert INT16.name == "int16"
        assert UINT8.name == "uint8"
        assert BIT.name == "bit"

    def test_width_bounds(self):
        with pytest.raises(IRError):
            DataType(0)
        with pytest.raises(IRError):
            DataType(65)
        assert DataType(64).bits == 64

    def test_one_bit_must_be_unsigned(self):
        with pytest.raises(IRError):
            DataType(1, signed=True)
        assert DataType(1, signed=False) == BIT

    def test_equality_and_hash(self):
        assert DataType(16, True) == INT16
        assert hash(DataType(16, True)) == hash(INT16)
        assert DataType(16, False) != INT16


class TestRanges:
    def test_signed_range(self):
        assert INT8.min_value == -128
        assert INT8.max_value == 127

    def test_unsigned_range(self):
        assert UINT8.min_value == 0
        assert UINT8.max_value == 255

    def test_bit_range(self):
        assert BIT.min_value == 0
        assert BIT.max_value == 1

    def test_contains(self):
        assert INT8.contains(-128)
        assert not INT8.contains(128)
        assert UINT8.contains(255)
        assert not UINT8.contains(-1)


class TestWrap:
    def test_wrap_identity_in_range(self):
        values = np.array([-5, 0, 7], dtype=np.int64)
        assert np.array_equal(INT8.wrap(values), values)

    def test_wrap_signed_overflow(self):
        assert INT8.wrap(np.int64(128)) == -128
        assert INT8.wrap(np.int64(-129)) == 127
        assert INT8.wrap(np.int64(255)) == -1

    def test_wrap_unsigned_overflow(self):
        assert UINT8.wrap(np.int64(256)) == 0
        assert UINT8.wrap(np.int64(-1)) == 255

    def test_wrap_bit(self):
        assert BIT.wrap(np.int64(2)) == 0
        assert BIT.wrap(np.int64(3)) == 1

    def test_wrap_wide_values(self):
        assert INT32.wrap(np.int64(1 << 32)) == 0
        assert UINT16.wrap(np.int64(1 << 16)) == 0

    def test_numpy_dtype_holds_range(self):
        for dtype in (INT8, UINT8, INT16, UINT16, INT32, BIT):
            nd = dtype.numpy_dtype()
            assert np.iinfo(nd).min <= dtype.min_value
            assert np.iinfo(nd).max >= dtype.max_value
