"""E3: the paper's worked example, number for number (DESIGN.md).

Section 4 of the paper walks the three allocators over the Figure 1 code
with a 64-register budget.  These tests pin every stated outcome:

* FR-RA assigns c and a fully, leaves 11 registers stranded (total 53);
* PR-RA gives the stranded 11 to d (``beta_d = 12``), total 64;
* CPA-RA picks cut {d} (full 30), then splits 30 across {a, b} -> 16/16;
* Figure 2(c)'s memory cycles: 1800 / 1560 / ~1184 per outer iteration.
"""

import pytest

from repro.analysis import build_groups
from repro.bench.example import PAPER_TMEM, build_example_kernel, figure2_report
from repro.core import (
    CriticalPathAwareAllocator,
    FullReuseAllocator,
    PartialReuseAllocator,
)
from repro.dfg import LatencyModel
from repro.sim import count_cycles


@pytest.fixture(scope="module")
def kernel():
    return build_example_kernel()


@pytest.fixture(scope="module")
def groups(kernel):
    return build_groups(kernel)


class TestFRRA:
    def test_distribution(self, kernel, groups):
        alloc = FullReuseAllocator().allocate(kernel, 64, groups)
        assert alloc.registers == {
            "a[k]": 30, "b[k][j]": 1, "c[j]": 20, "d[i][k]": 1, "e[i][j][k]": 1,
        }

    def test_total_and_leftover(self, kernel, groups):
        alloc = FullReuseAllocator().allocate(kernel, 64, groups)
        assert alloc.total_registers == 53
        assert alloc.leftover == 11


class TestPRRA:
    def test_leftover_goes_to_d(self, kernel, groups):
        alloc = PartialReuseAllocator().allocate(kernel, 64, groups)
        assert alloc.registers["d[i][k]"] == 12
        assert alloc.total_registers == 64


class TestCPARA:
    def test_distribution(self, kernel, groups):
        alloc = CriticalPathAwareAllocator().allocate(kernel, 64, groups)
        assert alloc.registers == {
            "a[k]": 16, "b[k][j]": 16, "c[j]": 1, "d[i][k]": 30, "e[i][j][k]": 1,
        }
        assert alloc.total_registers == 64

    def test_cut_sequence_in_trace(self, kernel, groups):
        alloc = CriticalPathAwareAllocator().allocate(kernel, 64, groups)
        trace = "\n".join(alloc.trace)
        assert "pick {d[i][k]}" in trace
        assert "pick {a[k], b[k][j]}" in trace
        assert trace.index("pick {d[i][k]}") < trace.index("pick {a[k], b[k][j]}")


class TestFigure2Tmem:
    """Figure 2(c): memory cycles per outer iteration."""

    def _tmem_per_outer(self, kernel, groups, allocator):
        alloc = allocator.allocate(kernel, 64, groups)
        report = count_cycles(kernel, groups, alloc, LatencyModel.tmem())
        return report.in_loop_cycles / kernel.nest.loops[0].trip_count

    def test_fr_ra_matches_exactly(self, kernel, groups):
        assert self._tmem_per_outer(kernel, groups, FullReuseAllocator()) == 1800

    def test_pr_ra_matches_exactly(self, kernel, groups):
        assert self._tmem_per_outer(kernel, groups, PartialReuseAllocator()) == 1560

    def test_cpa_ra_close_to_paper(self, kernel, groups):
        tmem = self._tmem_per_outer(kernel, groups, CriticalPathAwareAllocator())
        paper = PAPER_TMEM["CPA-RA"]
        assert abs(tmem - paper) / paper < 0.05  # within 5% (we get 1200)

    def test_ordering(self, kernel, groups):
        fr = self._tmem_per_outer(kernel, groups, FullReuseAllocator())
        pr = self._tmem_per_outer(kernel, groups, PartialReuseAllocator())
        cpa = self._tmem_per_outer(kernel, groups, CriticalPathAwareAllocator())
        assert cpa < pr < fr


class TestFigure2Report:
    def test_report_structure(self):
        rep = figure2_report()
        assert len(rep.rows) == 3
        assert set(rep.structural_cuts) == {
            "{d[i][k]}", "{e[i][j][k]}", "{a[k], b[k][j]}",
        }
        assert "read c[j]" not in rep.cg_nodes

    def test_report_deviations_small(self):
        rep = figure2_report()
        for row in rep.rows:
            assert abs(row.deviation_pct) < 5.0
