"""Tests for the hardware models: devices, RAM, registers, operators, binding."""

import pytest

from repro.analysis import build_groups
from repro.errors import BindingError, SynthesisError
from repro.hw import (
    OP_LIBRARY,
    RamSpec,
    RegisterFile,
    XCV300,
    XCV1000,
    bind_arrays,
    blocks_needed,
    default_op_latencies,
    op_spec,
)
from repro.ir import Op


class TestDevice:
    def test_xcv1000_matches_paper(self):
        assert XCV1000.slices == 12288  # Table 1's occupancy denominator
        assert XCV1000.bram_blocks == 32

    def test_occupancy(self):
        assert XCV1000.occupancy(1228.8) == pytest.approx(0.1)

    def test_register_bits(self):
        assert XCV1000.register_bits == 2 * 12288

    def test_invalid_device(self):
        from repro.hw.device import Device

        with pytest.raises(SynthesisError):
            Device("bad", slices=0, bram_blocks=4)
        with pytest.raises(SynthesisError):
            Device("bad", slices=10, bram_blocks=4, bram_ports=3)


class TestOps:
    def test_library_covers_every_op(self):
        for op in Op:
            assert op_spec(op) is not None

    def test_mul_slower_and_bigger_than_add(self):
        mul, add = OP_LIBRARY[Op.MUL], OP_LIBRARY[Op.ADD]
        assert mul.latency >= add.latency
        assert mul.slices(16) > add.slices(16)
        assert mul.delay_ns(16) > add.delay_ns(16)

    def test_width_scaling(self):
        add = OP_LIBRARY[Op.ADD]
        assert add.slices(32) > add.slices(8)
        assert add.delay_ns(32) > add.delay_ns(8)

    def test_default_latencies(self):
        lat = default_op_latencies()
        assert lat[Op.MUL] == 2
        assert lat[Op.ADD] == 1


class TestRam:
    def test_blocks_needed(self):
        from repro.ir import Array, INT16

        small = Array("s", (64,), INT16)  # 1 kbit
        assert blocks_needed(small, RamSpec(kbits=4)) == 1
        big = Array("b", (1024,), INT16)  # 16 kbit
        assert blocks_needed(big, RamSpec(kbits=4)) == 4

    def test_invalid_spec(self):
        with pytest.raises(BindingError):
            RamSpec(kbits=0)
        with pytest.raises(BindingError):
            RamSpec(ports=3)
        with pytest.raises(BindingError):
            RamSpec(latency=0)


class TestRegisterFile:
    def test_slices(self):
        assert RegisterFile(64, 16).flipflops == 1024
        assert RegisterFile(64, 16).slices == 512

    def test_fits(self):
        assert RegisterFile(64, 16).fits(XCV1000)
        assert not RegisterFile(20000, 16).fits(XCV300)

    def test_invalid(self):
        with pytest.raises(SynthesisError):
            RegisterFile(-1, 8)
        with pytest.raises(SynthesisError):
            RegisterFile(4, 0)


class TestBinding:
    def test_all_arrays_bound_when_ram_resident(self, example_kernel):
        names = frozenset(example_kernel.arrays)
        binding = bind_arrays(example_kernel, names, XCV1000)
        assert binding.ram_arrays == names
        assert binding.total_blocks >= len(names)

    def test_outputs_always_bound(self, example_kernel):
        binding = bind_arrays(example_kernel, frozenset(), XCV1000)
        assert "e" in binding.ram_arrays
        assert "a" not in binding.ram_arrays

    def test_budget_exceeded(self, example_kernel):
        from repro.hw.device import Device

        tiny = Device("tiny", slices=100, bram_blocks=1)
        with pytest.raises(BindingError):
            bind_arrays(
                example_kernel, frozenset(example_kernel.arrays), tiny
            )
