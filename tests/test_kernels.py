"""Tests for the six paper kernels: structure and functional correctness."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.kernels import (
    KERNEL_FACTORIES,
    PAPER_REGISTER_BUDGET,
    bic_reference,
    build_bic,
    build_decfir,
    build_fir,
    build_imi,
    build_mat,
    build_pat,
    decfir_reference,
    fir_reference,
    get_kernel,
    imi_reference,
    mat_reference,
    paper_kernels,
    pat_reference,
)
from repro.sim import random_inputs, run_kernel


class TestRegistry:
    def test_six_kernels(self):
        kernels = paper_kernels()
        assert [k.name for k in kernels] == [
            "fir", "decfir", "mat", "imi", "pat", "bic",
        ]

    def test_budget_constant(self):
        assert PAPER_REGISTER_BUDGET == 64

    def test_get_kernel(self):
        assert get_kernel("fir").name == "fir"
        with pytest.raises(ReproError):
            get_kernel("nope")

    def test_depths_match_paper(self):
        depths = {k.name: k.depth for k in paper_kernels()}
        # "all kernels are 2-deep except 3-deep MAT and 4-deep BIC"
        assert depths == {
            "fir": 2, "decfir": 2, "mat": 3, "imi": 2, "pat": 2, "bic": 4,
        }

    def test_all_validate(self):
        from repro.ir import validate_kernel

        for kernel in paper_kernels():
            validate_kernel(kernel)


class TestFunctionalCorrectness:
    """Each kernel's IR must compute what its numpy reference computes."""

    def test_fir(self):
        kern = build_fir(n=16, taps=4)
        inputs = random_inputs(kern, seed=0)
        mem = run_kernel(kern, inputs)
        assert np.array_equal(mem["y"], fir_reference(inputs["x"], inputs["c"]))

    def test_decfir(self):
        kern = build_decfir(n=8, taps=4, decimation=2)
        inputs = random_inputs(kern, seed=1)
        mem = run_kernel(kern, inputs)
        expected = decfir_reference(inputs["x"], inputs["c"], decimation=2)
        assert np.array_equal(mem["y"], expected)

    def test_mat(self):
        kern = build_mat(n=5)
        inputs = random_inputs(kern, seed=2)
        mem = run_kernel(kern, inputs)
        assert np.array_equal(mem["C"], mat_reference(inputs["A"], inputs["B"]))

    def test_imi(self):
        kern = build_imi(pixels=16, frames=4)
        inputs = random_inputs(kern, seed=3)
        mem = run_kernel(kern, inputs)
        expected = imi_reference(
            inputs["imgA"], inputs["imgB"], inputs["w1"], inputs["w2"]
        )
        assert np.array_equal(mem["out"], expected)

    def test_pat(self):
        kern = build_pat(text_len=64, pattern_len=8)
        inputs = random_inputs(kern, seed=4)
        mem = run_kernel(kern, inputs)
        expected = pat_reference(inputs["s"], inputs["p"])
        assert np.array_equal(mem["match"], expected)

    def test_pat_finds_planted_pattern(self):
        kern = build_pat(text_len=32, pattern_len=4)
        s = np.zeros(32, dtype=np.int64)
        p = np.array([1, 2, 3, 4], dtype=np.int64)
        s[10:14] = p
        mem = run_kernel(kern, {"s": s, "p": p})
        assert mem["match"][10] == 4
        # Elsewhere at most 3 characters can match.
        others = np.delete(mem["match"], 10)
        assert others.max() < 4

    def test_bic(self):
        kern = build_bic(image=8, template=3)
        inputs = random_inputs(kern, seed=5)
        img = inputs["I"] & 1
        tpl = inputs["T"] & 1
        mem = run_kernel(kern, {"I": img, "T": tpl})
        assert np.array_equal(mem["corr"], bic_reference(img, tpl))

    def test_bic_perfect_match_site(self):
        kern = build_bic(image=8, template=3)
        rng = np.random.default_rng(0)
        img = rng.integers(0, 2, size=(8, 8))
        tpl = img[2:5, 3:6].copy()
        mem = run_kernel(kern, {"I": img, "T": tpl})
        # Zero mismatches exactly where the template was cut out.
        assert mem["corr"][2, 3] == 0


class TestReuseStructure:
    """The reuse analysis must see the structures the paper describes."""

    def test_fir_betas(self):
        from repro.analysis import build_groups

        groups = {g.name: g for g in build_groups(build_fir())}
        assert groups["c[j]"].full_registers == 32
        assert groups["x[i + j]"].full_registers == 32
        assert groups["y[i]"].full_registers == 1

    def test_mat_betas(self):
        from repro.analysis import build_groups

        groups = {g.name: g for g in build_groups(build_mat())}
        assert groups["A[i][k]"].full_registers == 16
        assert groups["B[k][j]"].full_registers == 256
        assert groups["C[i][j]"].full_registers == 1

    def test_bic_betas(self):
        from repro.analysis import build_groups

        groups = {g.name: g for g in build_groups(build_bic())}
        assert groups["T[u][v]"].full_registers == 16
        assert groups["I[r + u][c + v]"].full_registers == 64

    def test_factories_are_parameterizable(self):
        assert build_fir(n=10, taps=3).iteration_count == 30
        assert build_mat(n=3).iteration_count == 27


class TestRegistryValidation:
    """The registry IR-validates every factory when it is constructed."""

    def test_shipped_registry_passes(self):
        from repro.kernels.registry import _validate_registry

        _validate_registry()

    def test_broken_factory_fails_loudly_naming_the_kernel(self):
        from repro.ir import INT16, INT32, KernelBuilder
        from repro.kernels.registry import _validate_registry

        def build_broken():
            b = KernelBuilder("broken")
            i = b.loop("i", 4)
            x = b.array("x", (2,), INT16)
            y = b.array("y", (4,), INT32, role="output")
            b.assign(y[i], x[i])
            return b.build()

        with pytest.raises(ReproError, match="'broken' failed IR validation"):
            _validate_registry({"broken": build_broken})
