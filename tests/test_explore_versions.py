"""Per-module versioning, dependency cones and incremental invalidation.

Three layers:

* :class:`VersionRegistry` mechanics on a synthetic package tree
  (discovery, hashing, AST import edges including relative and
  function-level imports, cone traversal, plugin pruning);
* per-query version vectors of the real tree (which plugins a query
  pulls in, which subsystems stay out);
* end-to-end incremental resume against a *copied* ``repro`` tree:
  editing one kernel's builder re-evaluates only that kernel's points,
  editing ``codegen`` re-evaluates nothing.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.explore import (
    DesignQuery,
    Executor,
    ResultCache,
    VersionRegistry,
    query_roots,
    query_vector,
)
from repro.explore.versions import (
    EVALUATION_ROOT,
    allocator_module,
    kernel_module,
    plugin_modules,
)
from repro.kernels import build_fir


def make_tree(root: Path) -> Path:
    """A little package with a diamond, a relative import and plugins."""
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text("X = 1\n")
    (pkg / "left.py").write_text("from pkg.base import X\n")
    (pkg / "right.py").write_text(
        textwrap.dedent(
            """
            from . import base

            def late():
                from pkg.lazy import Y  # function-level imports count
                return Y
            """
        )
    )
    (pkg / "lazy.py").write_text("Y = 2\n")
    (pkg / "top.py").write_text("import pkg.left\nimport pkg.right\n")
    (pkg / "plug_a.py").write_text("import pkg.plug_b\n")
    (pkg / "plug_b.py").write_text("from pkg.base import X\n")
    (pkg / "dispatch.py").write_text("import pkg.plug_a\nimport pkg.plug_b\n")
    sub = pkg / "sub"
    sub.mkdir()
    (sub / "__init__.py").write_text("")
    (sub / "leaf.py").write_text("from pkg.top import *\n")
    return pkg


class TestVersionRegistry:
    def test_module_discovery_and_hashing(self, tmp_path):
        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        modules = registry.modules()
        assert {"pkg", "pkg.base", "pkg.sub", "pkg.sub.leaf"} <= set(modules)
        before = registry.module_hash("pkg.base")
        assert len(before) == 12
        (tmp_path / "pkg" / "base.py").write_text("X = 2\n")
        # hashes are cached per instance; a fresh registry sees the edit
        assert registry.module_hash("pkg.base") == before
        fresh = VersionRegistry(tmp_path / "pkg", package="pkg")
        assert fresh.module_hash("pkg.base") != before
        assert fresh.module_hash("pkg.left") == registry.module_hash("pkg.left")

    def test_import_edges(self, tmp_path):
        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        assert registry.imports("pkg.left") == {"pkg.base"}
        # relative import resolves, and the lazy function import counts
        assert registry.imports("pkg.right") == {"pkg.base", "pkg.lazy"}
        assert registry.imports("pkg.top") == {"pkg.left", "pkg.right"}
        assert registry.imports("pkg.sub.leaf") == {"pkg.top"}
        assert registry.imports("pkg.base") == frozenset()

    def test_cone_is_transitive_closure(self, tmp_path):
        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        assert registry.cone(["pkg.top"]) == {
            "pkg.top", "pkg.left", "pkg.right", "pkg.base", "pkg.lazy",
        }
        assert registry.cone(["pkg.base"]) == {"pkg.base"}
        with pytest.raises(KeyError):
            registry.cone(["pkg.nope"])

    def test_cone_prunes_plugins_unless_rooted(self, tmp_path):
        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        plugins = frozenset({"pkg.plug_a", "pkg.plug_b"})
        pruned = registry.cone(["pkg.dispatch"], prune=plugins)
        assert pruned == {"pkg.dispatch"}
        # Without prune_from every edge into a non-root plugin is cut,
        # including plug_a's own import of plug_b.
        rooted = registry.cone(["pkg.dispatch", "pkg.plug_a"], prune=plugins)
        assert rooted == {"pkg.dispatch", "pkg.plug_a"}

    def test_prune_from_keeps_plugin_to_plugin_edges(self, tmp_path):
        # Scoped pruning (what query_vector uses): only the dispatcher's
        # fan-out is cut, so a plugin delegating to another plugin keeps
        # that real dependency in its cone.
        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        plugins = frozenset({"pkg.plug_a", "pkg.plug_b"})
        cone = registry.cone(
            ["pkg.dispatch", "pkg.plug_a"],
            prune=plugins,
            prune_from=frozenset({"pkg.dispatch"}),
        )
        assert cone == {
            "pkg.dispatch", "pkg.plug_a", "pkg.plug_b", "pkg.base",
        }

    def test_vector_maps_cone_to_hashes(self, tmp_path):
        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        vector = registry.vector(("pkg.top",))
        assert set(vector) == registry.cone(["pkg.top"])
        assert vector["pkg.base"] == registry.module_hash("pkg.base")

    def test_vector_memo_keys_on_pruning_too(self, tmp_path):
        # Same roots, different pruning -> different vectors; the memo
        # must not replay whichever cone happened to be computed first.
        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        plugins = frozenset({"pkg.plug_a", "pkg.plug_b"})
        full = registry.vector(("pkg.dispatch",))
        pruned = registry.vector(("pkg.dispatch",), prune=plugins)
        assert set(full) == {"pkg.dispatch", "pkg.plug_a", "pkg.plug_b", "pkg.base"}
        assert set(pruned) == {"pkg.dispatch"}
        assert registry.vector(("pkg.dispatch",)) == full


class TestQueryVectors:
    def test_roots_select_one_kernel_and_one_allocator(self):
        query = DesignQuery(kernel="fir", allocator="KS-RA", budget=8)
        roots = query_roots(query)
        assert EVALUATION_ROOT in roots
        assert kernel_module("fir") in roots
        assert allocator_module("KS-RA") in roots
        assert kernel_module("mat") not in roots
        assert allocator_module("FR-RA") not in roots

    def test_embedded_kernel_needs_no_kernel_module(self):
        query = DesignQuery.from_kernel(
            build_fir(n=8, taps=4), allocator="PR-RA", budget=8
        )
        assert query.kernel_json is not None
        roots = query_roots(query)
        assert not any(r.startswith("repro.kernels.") for r in roots)

    def test_unknown_names_fall_back_to_whole_family(self):
        query = DesignQuery(kernel="nope", allocator="nope", budget=8)
        roots = set(query_roots(query))
        assert plugin_modules() <= roots

    def test_vector_excludes_unrelated_subsystems(self):
        vector = query_vector(
            DesignQuery(kernel="fir", allocator="CPA-RA", budget=64)
        )
        assert "repro.sim.cycles" in vector
        assert "repro.scalar.coverage" in vector
        assert "repro.sim.residency" in vector
        for module in vector:
            assert not module.startswith("repro.codegen")
            assert not module.startswith("repro.bench")
            assert not module.startswith("repro.cli")
        assert "repro.kernels.mat" not in vector
        assert "repro.core.frra" not in vector

    def test_delegating_allocator_depends_on_its_delegate(self):
        # PR-RA runs FR-RA's full-replacement pass first, so frra.py is
        # a real dependency of every PR-RA point — editing the delegate
        # must invalidate the delegator's entries.
        vector = query_vector(
            DesignQuery(kernel="fir", allocator="PR-RA", budget=8)
        )
        assert "repro.core.prra" in vector
        assert "repro.core.frra" in vector
        # ...while the standalone allocators stay out of each other.
        assert "repro.core.knapsack" not in vector

    def test_self_consistent_with_import_graph(self):
        # Every module the vector names must exist and hash stably.
        vector = query_vector(DesignQuery(kernel="mat", allocator="FR-RA", budget=8))
        again = query_vector(DesignQuery(kernel="mat", allocator="FR-RA", budget=8))
        assert vector == again


@pytest.fixture()
def copied_tree(tmp_path):
    """A private copy of the installed repro sources to edit freely."""
    source = Path(repro.__file__).resolve().parent
    target = tmp_path / "repro"
    shutil.copytree(
        source, target, ignore=shutil.ignore_patterns("__pycache__")
    )
    return target


class TestIncrementalResume:
    QUERIES = [
        DesignQuery(kernel=kernel, allocator=allocator, budget=8)
        for kernel in ("fir", "mat")
        for allocator in ("FR-RA", "CPA-RA")
    ]

    def run(self, cache_dir, tree):
        cache = ResultCache(cache_dir, registry=VersionRegistry(tree))
        return Executor(cache=cache).run(self.QUERIES)

    def test_resume_after_leaf_edit_reruns_only_dependents(
        self, tmp_path, copied_tree
    ):
        cache_dir = tmp_path / "cache"
        first = self.run(cache_dir, copied_tree)
        assert first.stats.evaluated == 4 and first.stats.cache_hits == 0

        resumed = self.run(cache_dir, copied_tree)
        assert resumed.stats.cache_hits == 4 and resumed.stats.evaluated == 0
        assert resumed.stats.stale == 0

        # Editing mat's builder must strand exactly the two mat points.
        mat_py = copied_tree / "kernels" / "mat.py"
        mat_py.write_text(mat_py.read_text() + "\n# edited\n")
        after_edit = self.run(cache_dir, copied_tree)
        assert after_edit.stats.cache_hits == 2
        assert after_edit.stats.stale == 2
        assert after_edit.stats.evaluated == 2
        assert [r for r in after_edit] == list(first)

        # Editing codegen (outside every cone) must strand nothing.
        vhdl_py = copied_tree / "codegen" / "vhdl.py"
        vhdl_py.write_text(vhdl_py.read_text() + "\n# edited\n")
        after_codegen = self.run(cache_dir, copied_tree)
        assert after_codegen.stats.cache_hits == 4
        assert after_codegen.stats.stale == 0

    def test_allocator_edit_strands_only_its_points(
        self, tmp_path, copied_tree
    ):
        cache_dir = tmp_path / "cache"
        self.run(cache_dir, copied_tree)
        cpara_py = copied_tree / "core" / "cpara.py"
        cpara_py.write_text(cpara_py.read_text() + "\n# edited\n")
        resumed = self.run(cache_dir, copied_tree)
        assert resumed.stats.stale == 2  # the two CPA-RA points
        assert resumed.stats.cache_hits == 2

    def test_delegate_edit_strands_delegating_allocator(
        self, tmp_path, copied_tree
    ):
        queries = [
            DesignQuery(kernel="fir", allocator=allocator, budget=8)
            for allocator in ("PR-RA", "KS-RA")
        ]
        cache = ResultCache(
            tmp_path / "cache", registry=VersionRegistry(copied_tree)
        )
        Executor(cache=cache).run(queries)
        frra_py = copied_tree / "core" / "frra.py"
        frra_py.write_text(frra_py.read_text() + "\n# edited\n")
        cache = ResultCache(
            tmp_path / "cache", registry=VersionRegistry(copied_tree)
        )
        resumed = Executor(cache=cache).run(queries)
        # PR-RA delegates to FR-RA, so its point goes stale; the
        # knapsack allocator never touches frra and stays cached.
        assert resumed.stats.stale == 1
        assert resumed.stats.cache_hits == 1

    def test_shared_dependency_edit_strands_everything(
        self, tmp_path, copied_tree
    ):
        cache_dir = tmp_path / "cache"
        self.run(cache_dir, copied_tree)
        cycles_py = copied_tree / "sim" / "cycles.py"
        cycles_py.write_text(cycles_py.read_text() + "\n# edited\n")
        resumed = self.run(cache_dir, copied_tree)
        assert resumed.stats.stale == 4 and resumed.stats.cache_hits == 0

    def test_reused_executor_notices_edits(self, tmp_path, copied_tree):
        """One process, one Executor instance, an edit between runs."""
        cache = ResultCache(
            tmp_path / "cache", registry=VersionRegistry(copied_tree)
        )
        executor = Executor(cache=cache)
        executor.run(self.QUERIES)
        assert executor.run(self.QUERIES).stats.cache_hits == 4

        mat_py = copied_tree / "kernels" / "mat.py"
        mat_py.write_text(mat_py.read_text() + "\n# edited\n")
        after = executor.run(self.QUERIES)  # same instance: must refresh
        assert after.stats.stale == 2 and after.stats.cache_hits == 2

        # The in-process re-evaluations were stamped with the hashes the
        # process *loaded* (pre-edit), so a "fresh process" (new cache +
        # registry) still re-evaluates them once with the new code...
        repaired = self.run(tmp_path / "cache", copied_tree)
        assert repaired.stats.stale == 2 and repaired.stats.evaluated == 2
        # ...after which the cache is fully current again.
        assert self.run(tmp_path / "cache", copied_tree).stats.cache_hits == 4

    def test_default_registry_hashes_snapshot_at_import(self):
        # Write-side vectors must fingerprint the loaded code: the
        # default registry hashes the whole tree when repro.explore is
        # imported, not lazily at first put.
        from repro.explore.versions import default_registry

        registry = default_registry()
        assert set(registry._hashes) == set(registry.modules())

    def test_tampered_module_hash_strands_matching_cones(self, tmp_path):
        """The satellite form: mutate one module's recorded hash on disk."""
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        results = Executor(cache=cache).run(self.QUERIES)
        assert results.stats.evaluated == 4
        from repro.explore.cache import _entry_checksum

        tampered = 0
        for entry in cache_dir.glob("*.json"):
            doc = json.loads(entry.read_text())
            if "repro.kernels.fir" in doc["versions"]:
                doc["versions"]["repro.kernels.fir"] = "0" * 12
                # Re-stamp the checksum: simulates an entry *written*
                # with a different fir hash, not a torn write.
                doc["checksum"] = _entry_checksum(doc)
                entry.write_text(json.dumps(doc))
                tampered += 1
        assert tampered == 2
        resumed = Executor(cache=cache).run(self.QUERIES)
        assert resumed.stats.stale == 2
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.evaluated == 2


class TestDynamicImportWarning:
    """Untrackable dynamic imports warn loudly when the registry parses
    the offending module (satellite of the lint PR: the runtime twin of
    ``repro lint``'s version-cone:dynamic-import finding)."""

    def test_dynamic_import_warns_with_module_and_line(self, tmp_path):
        from repro.explore.versions import DynamicImportWarning

        pkg = make_tree(tmp_path)
        (pkg / "shifty.py").write_text(
            textwrap.dedent(
                """
                import importlib

                def load(name):
                    return importlib.import_module(name)
                """
            )
        )
        registry = VersionRegistry(pkg, package="pkg")
        with pytest.warns(DynamicImportWarning, match=r"pkg\.shifty \(line 5\)"):
            registry.cone(["pkg.shifty"])

    def test_static_tree_is_silent(self, tmp_path):
        import warnings as _warnings

        registry = VersionRegistry(make_tree(tmp_path), package="pkg")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            registry.cone(["pkg.top"])
