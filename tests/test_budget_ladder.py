"""Acceptance pins: budget-ladder evaluation is bit-identical everywhere.

Mirrors ``test_trace_engine.py`` for the ``ladder`` axis:
``verify_ladder_equivalence`` sweeps registered kernel × allocator ×
budget points (at every ``batch`` × ``trace_engine`` combination) and
must come back empty; the miss-count ladders
(:func:`~repro.sim.residency.lru_miss_counts`,
:func:`~repro.sim.residency.opt_miss_ladder`) and the capacity-shared
trace plane (:class:`~repro.sim.residency.OptTraceLadder`) are pinned
white-box against brute-force per-capacity simulation; the executor and
the CLI expose the switch (``--no-budget-ladder``) and agree across it;
and the ``repro perf --compare`` satellite fixes (missing-grid
ratio-only fallback, new-only info rows) gate the way their contracts
say.
"""

import math
import warnings
from collections import OrderedDict
from dataclasses import replace

import numpy as np
import pytest

from fuzz_kernels import random_case, random_stream
from repro.bench.perf import compare_reports, render_compare
from repro.cli import main
from repro.core.pipeline import _ALLOCATORS
from repro.errors import AnalysisError, SimulationError
from repro.explore import (
    DesignQuery,
    ResultCache,
    compare_ladder,
    run_queries,
    verify_ladder_equivalence,
)
from repro.explore.evaluate import evaluate_query
from repro.explore.schedule import CostModel
from repro.kernels import KERNEL_FACTORIES
from repro.scalar.coverage import GroupCoverage
from repro.sim.residency import (
    OptTraceLadder,
    lru_miss_counts,
    lru_misses,
    opt_miss_ladder,
    opt_misses,
    opt_trace,
    opt_trace_ladder,
)

BUDGETS = (4, 16, 64)
GRID = [
    DesignQuery(kernel=kernel, allocator=allocator, budget=budget)
    for kernel in sorted(KERNEL_FACTORIES)
    for allocator in sorted(_ALLOCATORS)
    for budget in BUDGETS
]


# -- registered-grid bit-identity ---------------------------------------------


def test_every_registered_point_is_bit_identical():
    mismatches = verify_ladder_equivalence(GRID)
    assert not mismatches, "\n".join(m.describe() for m in mismatches)


@pytest.mark.parametrize("batch", (True, False))
@pytest.mark.parametrize("engine", ("array", "reference"))
def test_ladder_composes_with_batch_and_engine(batch, engine):
    mismatches = verify_ladder_equivalence(
        GRID[::7], batch=batch, trace_engine=engine
    )
    assert not mismatches, "\n".join(m.describe() for m in mismatches)


def test_compare_ladder_reports_fields():
    assert compare_ladder(GRID[0]) == []


# -- miss-count ladders: white-box histogram / suffix-sum pins ----------------


def _brute_force_lru_misses(addresses, capacity):
    """Reference per-capacity LRU simulation (ordered dict recency)."""
    misses = 0
    cache: "OrderedDict[int, None]" = OrderedDict()
    for address in addresses:
        if capacity and address in cache:
            cache.move_to_end(address)
        else:
            misses += 1
            if capacity:
                cache[address] = None
                if len(cache) > capacity:
                    cache.popitem(last=False)
    return misses


def test_lru_miss_counts_matches_brute_force_simulation():
    for seed in range(80):
        addresses, _, _ = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        footprint = len(set(addresses))
        capacities = sorted({0, 1, 2, 3, 7, footprint, footprint + 5, 256})
        ladder = lru_miss_counts(stream, capacities)
        assert sorted(ladder) == capacities
        for capacity in capacities:
            want = _brute_force_lru_misses(addresses, capacity)
            assert ladder[capacity] == want, f"seed {seed} cap {capacity}"
            # ... and the per-access API agrees with its own histogram.
            assert int(lru_misses(stream, capacity).sum()) == want


def test_lru_miss_counts_edges():
    empty = np.asarray([], dtype=np.int64)
    assert lru_miss_counts(empty, [0, 1, 4]) == {0: 0, 1: 0, 4: 0}
    stream = np.asarray([5, 5, 5], dtype=np.int64)
    assert lru_miss_counts(stream, [0, 1]) == {0: 3, 1: 1}
    with pytest.raises(SimulationError):
        lru_miss_counts(stream, [-1])


def test_opt_miss_ladder_matches_per_capacity():
    for seed in range(60):
        addresses, _, _ = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        footprint = len(set(addresses))
        capacities = sorted({0, 1, 3, footprint // 2, footprint, 128})
        ladder = opt_miss_ladder(stream, capacities)
        for capacity in capacities:
            assert ladder[capacity] == int(opt_misses(stream, capacity).sum()), (
                f"seed {seed} cap {capacity}"
            )


# -- the capacity-shared trace plane ------------------------------------------


def _assert_traces_equal(expected, got, label):
    for name, left, right in zip(
        ("misses", "inserted", "evicted", "freed"), expected, got
    ):
        assert np.array_equal(left, right), f"{label}: {name} diverged"


@pytest.mark.parametrize("engine", ("array", "reference"))
def test_trace_plane_is_bit_identical_across_shared_capacities(engine):
    """One plane, many capacities in adversarial order == fresh traces."""
    for seed in range(40):
        addresses, capacity, row_len = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        capacities = [capacity, 1, capacity + 7, 2, capacity, 0, 64]
        plane = OptTraceLadder(stream, periods=(row_len,), engine=engine)
        for c in capacities:
            fresh = opt_trace(stream, c, periods=(row_len,), engine=engine)
            _assert_traces_equal(
                fresh, plane.trace(c), f"seed {seed} cap {c} ({engine})"
            )


def test_opt_trace_ladder_convenience_matches_opt_trace():
    for seed in range(20):
        addresses, capacity, row_len = random_stream(seed)
        stream = np.asarray(addresses, dtype=np.int64)
        capacities = sorted({0, 1, capacity, capacity + 3})
        traces = opt_trace_ladder(stream, capacities, row_len=row_len)
        assert sorted(traces) == capacities
        for c, got in traces.items():
            _assert_traces_equal(
                opt_trace(stream, c, row_len=row_len), got, f"seed {seed}/{c}"
            )


def test_trace_plane_validation():
    plane = OptTraceLadder(np.asarray([1, 2, 1], dtype=np.int64))
    with pytest.raises(SimulationError):
        plane.trace(-1)
    with pytest.raises(SimulationError):
        OptTraceLadder(np.asarray([1], dtype=np.int64), engine="simd")
    misses, inserted, evicted, freed = plane.trace(0)
    assert misses.all() and not inserted.any()
    assert (evicted == -1).all() and not freed.any()


# -- coverage: the pinned rank-histogram budget axis --------------------------


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_ram_access_ladder_matches_per_count_results(seed):
    case = random_case(seed)
    values = sorted({0, 1, 2, 3, case.budget, case.budget + 4})
    for group in case.groups:
        for anchor in ("low", "high"):
            fast = GroupCoverage(case.kernel, group, ladder=True)
            slow = GroupCoverage(case.kernel, group, ladder=False)
            ladder = fast.ram_access_ladder(values, anchor=anchor)
            for registers in values:
                want = slow.result(registers, anchor=anchor).total_ram_accesses
                assert ladder[registers] == want, (
                    f"seed {seed} group {group.name} r={registers} {anchor}"
                )
    with pytest.raises(AnalysisError):
        GroupCoverage(case.kernel, case.groups[0]).ram_access_ladder(
            [1], anchor="middle"
        )
    with pytest.raises(AnalysisError):
        GroupCoverage(case.kernel, case.groups[0]).ram_access_ladder([-1])


@pytest.mark.parametrize("seed", range(0, 120, 10))
def test_fuzz_coverage_ladder_masks_equal(seed):
    """Full coverage masks agree across the ladder switch, all modes."""
    case = random_case(seed)
    for group in case.groups:
        for registers in {0, 2, case.budget, group.full_registers}:
            for anchor in ("low", "high"):
                fast = GroupCoverage(case.kernel, group, ladder=True).result(
                    registers, anchor=anchor
                )
                slow = GroupCoverage(case.kernel, group, ladder=False).result(
                    registers, anchor=anchor
                )
                assert np.array_equal(fast.read_miss, slow.read_miss)
                assert np.array_equal(fast.write_miss, slow.write_miss)
                assert fast.writeback_stores == slow.writeback_stores


# -- executor / CLI plumbing --------------------------------------------------


def test_executor_ladder_flag_changes_nothing(tmp_path):
    queries = GRID[:8]
    fast = run_queries(queries, cache=tmp_path / "a", ladder=True)
    slow = run_queries(queries, cache=tmp_path / "b", ladder=False)
    assert list(fast) == list(slow)
    # Bit-identical records mean the cache is shared across the switch.
    resumed = run_queries(queries, cache=tmp_path / "b", ladder=True)
    assert resumed.stats.cache_hits == len(queries)


def test_cli_no_budget_ladder_smoke(capsys):
    argv = [
        "explore", "--kernels", "fir", "--allocators", "CPA-RA",
        "--budgets", "16", "--format", "csv",
    ]
    assert main(argv) == 0
    fast = capsys.readouterr().out
    assert main(argv + ["--no-budget-ladder"]) == 0
    assert capsys.readouterr().out == fast


def test_profile_trace_stage_survives_worker_pools():
    """Stage seconds are jobs-invariant: the trace clock folds worker-side.

    Before the fix, ``--profile`` undercounted the trace stage under
    ``--jobs N>1``: the fold ran in the parent, after the worker's
    stage dict had already been pickled.
    """
    queries = [
        DesignQuery(kernel="fir", allocator="PR-RA", budget=budget)
        for budget in (8, 12, 16, 24)
    ]
    solo = run_queries(queries, jobs=1, context=False)
    pooled = run_queries(queries, jobs=2, context=False)
    for results in (solo, pooled):
        stages = results.stats.stage_seconds
        assert "trace" in stages and stages["trace"] > 0.0
    for solo_record, pooled_record in zip(solo, pooled):
        assert set(solo_record.stages) == set(pooled_record.stages)


# -- perf compare: the satellite gate fixes -----------------------------------


def _report_doc(**overrides):
    doc = {
        "grid": {"kernels": ["fir"], "budgets": [4, 8], "points": 2},
        "speedup": {"grid_warm_vs_no_context": 10.0},
        "seconds": {"grid_no_context": 1.0, "grid_warm_context": 0.1},
    }
    doc.update(overrides)
    return doc


def test_compare_missing_grid_falls_back_to_ratio_gating():
    gridless = {k: v for k, v in _report_doc().items() if k != "grid"}
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rows, regressions = compare_reports(dict(gridless), dict(gridless))
    assert any("grid" in str(w.message) for w in caught)
    # Two grid-less reports may come from unrelated hosts: absolute
    # seconds must NOT gate, host-independent ratios must.
    assert all(not r.gates for r in rows if r.kind == "seconds")
    assert all(r.gates for r in rows if r.kind == "ratio")
    assert not regressions

    slower = dict(gridless)
    slower["seconds"] = {"grid_no_context": 100.0, "grid_warm_context": 10.0}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        _, regressions = compare_reports(dict(gridless), slower)
    assert not regressions, "absolute seconds gated across missing grids"


def test_compare_same_grid_still_gates_seconds():
    old = _report_doc()
    new = _report_doc(seconds={"grid_no_context": 10.0, "grid_warm_context": 1.0})
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rows, regressions = compare_reports(old, new)
    assert not caught
    assert {r.metric for r in regressions} == {
        "seconds.grid_no_context", "seconds.grid_warm_context",
    }


def test_compare_new_only_ratios_are_info_rows():
    old = _report_doc()
    new = _report_doc(
        budget_column={
            "fir": {
                "counts_per_budget_s": 0.2,
                "counts_ladder_s": 0.0125,
                "speedup": 16.0,
                "trace_speedup": 3.5,
                "evaluate_speedup": 1.8,
            }
        }
    )
    rows, regressions = compare_reports(old, new)
    assert not regressions
    new_only = {r.metric: r for r in rows if math.isnan(r.old)}
    assert set(new_only) == {
        "budget_column.fir.speedup",
        "budget_column.fir.trace_speedup",
        "budget_column.fir.evaluate_speedup",
    }
    assert all(not r.gates for r in new_only.values())
    rendered = render_compare(rows, "old", "new")
    line = next(
        l for l in rendered.splitlines() if "budget_column.fir.speedup" in l
    )
    assert "-" in line and "16" in line and "info" in line


# -- cost model: engine-keyed observations ------------------------------------


def _query(allocator="CPA-RA", budget=16):
    return DesignQuery(kernel="fir", allocator=allocator, budget=budget)


def test_cost_model_prefers_timings_from_its_own_engine():
    model = CostModel(trace_engine="array")
    for _ in range(3):
        model.observe(_query(), 10.0, trace_engine="reference")
        model.observe(_query(), 1.0, trace_engine="array")
    assert model.estimate(_query()) == pytest.approx(1.0)
    slow = CostModel(trace_engine="reference")
    for _ in range(3):
        slow.observe(_query(), 10.0, trace_engine="reference")
        slow.observe(_query(), 1.0, trace_engine="array")
    assert slow.estimate(_query()) == pytest.approx(10.0)


def test_cost_model_cross_engine_fallback():
    # Only foreign-engine timings exist: they still beat a static prior.
    model = CostModel(trace_engine="array")
    model.observe(_query(), 4.0, trace_engine="reference")
    model.observe(_query(), 6.0, trace_engine=None)
    assert model.estimate(_query()) == pytest.approx(5.0)


def test_cost_model_from_cache_reads_producing_engine(tmp_path):
    cache = ResultCache(tmp_path)
    record = evaluate_query(_query(), context=False)
    cache.put(replace(record, seconds=0.5), trace_engine="reference", batch=True)
    legacy = evaluate_query(_query(allocator="FR-RA"), context=False)
    cache.put(replace(legacy, seconds=0.25))  # no provenance: engine-unknown
    model = CostModel.from_cache(cache, trace_engine="array")
    assert model.observations == 2
    key = (_query().kernel, None, "CPA-RA")
    assert set(model._pair[key]) == {"reference"}
    legacy_key = (_query().kernel, None, "FR-RA")
    assert set(model._pair[legacy_key]) == {None}
