"""Tests for pipeline options and error paths."""

import pytest

from repro.core import PAPER_VERSIONS, evaluate_kernel
from repro.dfg import LatencyModel
from repro.errors import (
    AllocationError,
    AnalysisError,
    BindingError,
    IRError,
    ReproError,
    SimulationError,
    SynthesisError,
    ValidationError,
)
from repro.hw import VIRTEX2_XC2V1000, XCV1000
from repro.kernels import build_fir


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [IRError, ValidationError, AnalysisError, AllocationError,
         SimulationError, SynthesisError, BindingError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_is_ir_error(self):
        assert issubclass(ValidationError, IRError)


class TestPipelineOptions:
    @pytest.fixture(scope="class")
    def kernel(self):
        return build_fir(n=32, taps=8)

    def test_default_versions(self, kernel):
        result = evaluate_kernel(kernel, budget=12)
        assert tuple(result.designs) == PAPER_VERSIONS

    def test_custom_algorithms(self, kernel):
        result = evaluate_kernel(
            kernel, budget=12, algorithms=("NO-SR", "KS-RA")
        )
        assert set(result.designs) == {"NO-SR", "KS-RA"}

    def test_missing_design_raises(self, kernel):
        result = evaluate_kernel(kernel, budget=12, algorithms=("FR-RA",))
        with pytest.raises(ReproError):
            result.design("CPA-RA")

    def test_device_override_changes_clock(self, kernel):
        xcv = evaluate_kernel(kernel, budget=12, device=XCV1000)
        v2pro = evaluate_kernel(kernel, budget=12, device=VIRTEX2_XC2V1000)
        assert (
            v2pro.design("FR-RA").clock_ns < xcv.design("FR-RA").clock_ns
        )

    def test_model_override_changes_cycles(self, kernel):
        slow = evaluate_kernel(
            kernel, budget=12, model=LatencyModel.realistic(ram_latency=4)
        )
        fast = evaluate_kernel(
            kernel, budget=12, model=LatencyModel.realistic(ram_latency=1)
        )
        assert (
            slow.design("FR-RA").total_cycles
            > fast.design("FR-RA").total_cycles
        )

    def test_dual_ports_never_slower(self, kernel):
        single = evaluate_kernel(kernel, budget=12, ram_ports=1)
        dual = evaluate_kernel(kernel, budget=12, ram_ports=2)
        for algorithm in PAPER_VERSIONS:
            assert (
                dual.design(algorithm).total_cycles
                <= single.design(algorithm).total_cycles
            )

    def test_baseline_property(self, kernel):
        result = evaluate_kernel(kernel, budget=12)
        assert result.baseline is result.design("FR-RA")
