"""Tests for the functional interpreters: semantics and register soundness."""

import numpy as np
import pytest

from repro.analysis import build_groups
from repro.core import (
    CriticalPathAwareAllocator,
    FullReuseAllocator,
    NaiveAllocator,
    PartialReuseAllocator,
)
from repro.scalar.coverage import GroupCoverage
from repro.sim import random_inputs, run_kernel, run_scalar_replaced


class TestRunKernel:
    def test_copy_kernel_semantics(self, copy_kernel):
        inputs = random_inputs(copy_kernel, seed=5)
        mem = run_kernel(copy_kernel, inputs)
        for i in range(6):
            assert np.array_equal(mem["out"][i], inputs["src"])

    def test_accumulator_semantics(self, small_fir):
        inputs = random_inputs(small_fir, seed=2)
        mem = run_kernel(small_fir, inputs)
        from repro.kernels import fir_reference

        expected = fir_reference(inputs["x"], inputs["c"])
        assert np.array_equal(mem["y"], expected)

    def test_wrapping_behaviour(self):
        from repro.ir import INT8, KernelBuilder

        b = KernelBuilder("wrap")
        i = b.loop("i", 2)
        a = b.array("a", (2,), INT8)
        out = b.array("o", (2,), INT8, role="output")
        b.assign(out[i], a[i] * 2)
        kern = b.build()
        mem = run_kernel(kern, {"a": np.array([100, -100])})
        assert mem["o"].tolist() == [INT8.wrap(np.int64(200)), INT8.wrap(np.int64(-200))]

    def test_shape_mismatch_rejected(self, copy_kernel):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_kernel(copy_kernel, {"src": np.zeros(3)})


ALLOCATORS = [
    NaiveAllocator,
    FullReuseAllocator,
    PartialReuseAllocator,
    CriticalPathAwareAllocator,
]


class TestScalarReplacedEquivalence:
    """The keystone property: any allocation preserves semantics exactly,
    and the interpreter's RAM traffic matches the coverage accounting."""

    @pytest.mark.parametrize("allocator_cls", ALLOCATORS)
    @pytest.mark.parametrize("budget", [6, 12, 24, 64])
    def test_example_kernel(self, tiny_example_kernel, allocator_cls, budget):
        self._check(tiny_example_kernel, allocator_cls, budget)

    @pytest.mark.parametrize("allocator_cls", ALLOCATORS)
    @pytest.mark.parametrize("budget", [4, 7, 12])
    def test_fir(self, small_fir, allocator_cls, budget):
        self._check(small_fir, allocator_cls, budget)

    @pytest.mark.parametrize("allocator_cls", ALLOCATORS)
    def test_mat(self, small_mat, allocator_cls):
        self._check(small_mat, allocator_cls, 16)

    def _check(self, kernel, allocator_cls, budget):
        groups = build_groups(kernel)
        if budget < len(groups):
            pytest.skip("budget below feasibility")
        allocation = allocator_cls().allocate(kernel, budget, groups)
        inputs = random_inputs(kernel, seed=42)
        golden = run_kernel(kernel, inputs)
        run = run_scalar_replaced(kernel, groups, allocation, inputs)
        for name, expected in golden.items():
            assert np.array_equal(run.memory[name], expected), (
                f"{allocator_cls.__name__} budget {budget} corrupted {name}"
            )
        for group in groups:
            cov = GroupCoverage(kernel, group)
            expected_accesses = cov.ram_accesses(
                allocation.registers_for(group.name)
            )
            assert run.ram_accesses[group.name] == expected_accesses

    def test_high_anchor_equivalence(self, tiny_example_kernel):
        groups = build_groups(tiny_example_kernel)
        allocation = PartialReuseAllocator().allocate(
            tiny_example_kernel, 12, groups
        )
        inputs = random_inputs(tiny_example_kernel, seed=9)
        golden = run_kernel(tiny_example_kernel, inputs)
        anchors = {g.name: "high" for g in groups}
        run = run_scalar_replaced(
            tiny_example_kernel, groups, allocation, inputs, anchors=anchors
        )
        for name, expected in golden.items():
            assert np.array_equal(run.memory[name], expected)


class TestCapacityEnforcement:
    @pytest.mark.parametrize("budget", [5, 8, 16, 40])
    def test_high_water_within_covered(self, tiny_example_kernel, budget):
        groups = build_groups(tiny_example_kernel)
        allocation = CriticalPathAwareAllocator().allocate(
            tiny_example_kernel, budget, groups
        )
        inputs = random_inputs(tiny_example_kernel, seed=1)
        run = run_scalar_replaced(tiny_example_kernel, groups, allocation, inputs)
        for group in groups:
            cov = GroupCoverage(tiny_example_kernel, group)
            covered = cov.covered(allocation.registers_for(group.name))
            assert run.register_high_water[group.name] <= max(covered, 0) + 0
