"""Tests for the builder, loop nests and kernel reference enumeration."""

import pytest

from repro.errors import IRError, ValidationError
from repro.ir import (
    INT16,
    INT32,
    Kernel,
    KernelBuilder,
    Loop,
    LoopNest,
    pretty,
    validate_kernel,
)


def build_demo(n=4, m=3):
    b = KernelBuilder("demo")
    i = b.loop("i", n)
    j = b.loop("j", m)
    x = b.array("x", (n + m,), INT16)
    c = b.array("c", (m,), INT16)
    y = b.array("y", (n,), INT32, role="output")
    b.assign(y[i], y[i] + c[j] * x[i + j])
    return b.build()


class TestLoop:
    def test_trip_count(self):
        assert Loop("i", 10).trip_count == 10
        assert Loop("i", 10, 2).trip_count == 8
        assert Loop("i", 10, 0, 3).trip_count == 4

    def test_values_follow_step(self):
        assert Loop("i", 7, 1, 2).values().tolist() == [1, 3, 5]

    def test_empty_range_rejected(self):
        with pytest.raises(IRError):
            Loop("i", 0)

    def test_bad_step(self):
        with pytest.raises(IRError):
            Loop("i", 5, 0, 0)

    def test_str(self):
        assert "i++" in str(Loop("i", 5))
        assert "i += 2" in str(Loop("i", 5, 0, 2))


class TestLoopNest:
    def test_depth_and_vars(self, example_kernel):
        nest = example_kernel.nest
        assert nest.depth == 3
        assert nest.loop_vars == ("i", "j", "k")
        assert nest.iteration_count == 4 * 20 * 30

    def test_level_of(self, example_kernel):
        assert example_kernel.nest.level_of("i") == 1
        assert example_kernel.nest.level_of("k") == 3
        with pytest.raises(IRError):
            example_kernel.nest.level_of("z")

    def test_iteration_points_order(self):
        kern = build_demo(n=2, m=2)
        points = list(kern.nest.iteration_points())
        assert points == [
            {"i": 0, "j": 0},
            {"i": 0, "j": 1},
            {"i": 1, "j": 0},
            {"i": 1, "j": 1},
        ]

    def test_meshgrids_broadcast(self):
        kern = build_demo(n=3, m=2)
        grids = kern.nest.meshgrids()
        assert grids["i"].shape == (3, 1)
        assert grids["j"].shape == (1, 2)

    def test_duplicate_loop_vars_rejected(self):
        loop = Loop("i", 3)
        kern = build_demo()
        with pytest.raises(IRError):
            LoopNest((loop, loop), kern.nest.body)


class TestBuilder:
    def test_duplicate_loop_rejected(self):
        b = KernelBuilder("demo")
        b.loop("i", 4)
        with pytest.raises(IRError):
            b.loop("i", 5)

    def test_duplicate_array_rejected(self):
        b = KernelBuilder("demo")
        b.array("a", (4,))
        with pytest.raises(IRError):
            b.array("a", (5,))

    def test_index_arithmetic(self):
        b = KernelBuilder("demo")
        i = b.loop("i", 4)
        j = b.loop("j", 3)
        a = b.array("a", (20,), INT16)
        out = b.array("o", (4, 3), INT16, role="output")
        b.assign(out[i, j], a[2 * i + j + 1])
        kern = b.build()
        site = [s for s in kern.reference_sites() if s.array_name == "a"][0]
        assert site.ref.indices[0].coeffs == {"i": 2, "j": 1}
        assert site.ref.indices[0].offset == 1

    def test_reverse_arithmetic(self):
        b = KernelBuilder("demo")
        i = b.loop("i", 4)
        a = b.array("a", (10,), INT16)
        out = b.array("o", (4,), INT16, role="output")
        b.assign(out[i], a[1 + i])
        kern = b.build()
        site = [s for s in kern.reference_sites() if s.array_name == "a"][0]
        assert site.ref.indices[0].offset == 1

    def test_accumulate_sugar(self):
        b = KernelBuilder("demo")
        i = b.loop("i", 4)
        a = b.array("a", (4,), INT16)
        out = b.array("o", (4,), INT32, role="output")
        b.accumulate(out[i], a[i] + 0)
        kern = b.build()
        assert kern.nest.body[0].is_accumulation()


class TestKernel:
    def test_arrays_collected(self, example_kernel):
        assert set(example_kernel.arrays) == {"a", "b", "c", "d", "e"}

    def test_read_and_written_sets(self, example_kernel):
        assert example_kernel.written_arrays == {"d", "e"}
        assert "a" in example_kernel.read_arrays
        assert "d" in example_kernel.read_arrays

    def test_reference_sites_order_and_ids(self, example_kernel):
        ids = [s.site_id for s in example_kernel.reference_sites()]
        assert ids == [
            "s0/r:a[k]",
            "s0/r:b[k][j]",
            "s0/w:d[i][k]",
            "s1/r:c[j]",
            "s1/r:d[i][k]",
            "s1/w:e[i][j][k]",
        ]

    def test_site_by_id(self, example_kernel):
        site = example_kernel.site_by_id("s0/r:a[k]")
        assert site.array_name == "a"
        with pytest.raises(IRError):
            example_kernel.site_by_id("nope")

    def test_total_memory_accesses(self):
        kern = build_demo(n=2, m=2)
        # 4 sites (y read, c, x, y write) x 4 iterations
        assert kern.total_memory_accesses() == 16

    def test_pretty_renders(self, example_kernel):
        text = pretty(example_kernel)
        assert "for (i = 0; i < 4; i++)" in text
        assert "d[i][k] = (a[k] * b[k][j]);" in text


class TestValidation:
    def test_unbound_variable(self):
        b = KernelBuilder("bad")
        i = b.loop("i", 4)
        a = b.array("a", (10,), INT16)
        out = b.array("o", (4,), INT16, role="output")
        from repro.ir import AffineIndex, Load, ArrayRef

        bad_ref = ArrayRef(a.array, (AffineIndex.var("z"),))
        b.assign(out[i], Load(bad_ref) + 0)
        with pytest.raises(ValidationError):
            b.build()

    def test_out_of_bounds(self):
        b = KernelBuilder("bad")
        i = b.loop("i", 10)
        a = b.array("a", (5,), INT16)
        out = b.array("o", (10,), INT16, role="output")
        b.assign(out[i], a[i] + 0)
        with pytest.raises(ValidationError):
            b.build()

    def test_negative_offset_out_of_bounds(self):
        b = KernelBuilder("bad")
        i = b.loop("i", 5)
        a = b.array("a", (5,), INT16)
        out = b.array("o", (5,), INT16, role="output")
        b.assign(out[i], a[i - 1] + 0)
        with pytest.raises(ValidationError):
            b.build()

    def test_write_to_input_rejected(self):
        b = KernelBuilder("bad")
        i = b.loop("i", 4)
        a = b.array("a", (4,), INT16)  # input role
        b.assign(a[i], a[i] + 1)
        with pytest.raises(ValidationError):
            b.build()

    def test_valid_kernel_passes(self, example_kernel):
        validate_kernel(example_kernel)
