"""Tests for kernel JSON serialization and the CLI."""

import json

import pytest

from repro.errors import IRError
from repro.ir.serialize import kernel_from_json, kernel_to_json
from repro.kernels import paper_kernels


class TestSerialization:
    @pytest.mark.parametrize("kernel", paper_kernels(), ids=lambda k: k.name)
    def test_roundtrip_structural_equality(self, kernel):
        text = kernel_to_json(kernel)
        back = kernel_from_json(text)
        assert back.name == kernel.name
        assert back.nest == kernel.nest
        assert back.arrays == kernel.arrays

    def test_roundtrip_preserves_analysis(self, example_kernel):
        from repro.analysis import build_groups

        back = kernel_from_json(kernel_to_json(example_kernel))
        original = {g.name: g.full_registers for g in build_groups(example_kernel)}
        restored = {g.name: g.full_registers for g in build_groups(back)}
        assert original == restored

    def test_rejects_bad_json(self):
        with pytest.raises(IRError):
            kernel_from_json("not json {")

    def test_rejects_wrong_version(self, example_kernel):
        doc = json.loads(kernel_to_json(example_kernel))
        doc["format"] = 99
        with pytest.raises(IRError):
            kernel_from_json(json.dumps(doc))

    def test_rejects_undeclared_array(self, example_kernel):
        doc = json.loads(kernel_to_json(example_kernel))
        doc["body"][0]["target"]["array"] = "ghost"
        with pytest.raises(IRError):
            kernel_from_json(json.dumps(doc))

    def test_validates_on_load(self, example_kernel):
        doc = json.loads(kernel_to_json(example_kernel))
        # Shrink an array under its accesses: validation must fire.
        for spec in doc["arrays"]:
            if spec["name"] == "a":
                spec["shape"] = [2]
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            kernel_from_json(json.dumps(doc))


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fir" in out and "CPA-RA" in out

    def test_kernel_command(self, capsys):
        from repro.cli import main

        assert main(["kernel", "mat", "--budget", "32"]) == 0
        out = capsys.readouterr().out
        assert "mat under a 32-register budget" in out
        assert "CPA-RA" in out

    def test_kernel_trace(self, capsys):
        from repro.cli import main

        assert main(
            ["kernel", "mat", "--budget", "32", "--trace",
             "--algorithms", "CPA-RA"]
        ) == 0
        out = capsys.readouterr().out
        assert "decision trace" in out

    def test_figure2_command(self, capsys):
        from repro.cli import main

        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(c), reproduced" in out
        assert "1800" in out

    def test_vhdl_command(self, capsys):
        from repro.cli import main

        assert main(["vhdl", "fir", "--algorithm", "FR-RA"]) == 0
        out = capsys.readouterr().out
        assert "entity fir_fr_ra is" in out

    def test_unknown_kernel_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["kernel", "nope"])
